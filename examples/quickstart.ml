(* Quickstart: build the planar backbone spanner for a random wireless
   network and look at its guarantees.

     dune exec examples/quickstart.exe

   This is the five-minute tour of the public API: deploy nodes, build
   every structure with [Core.Backbone.run] driven by a [Config], inspect
   the quality metrics, and route a packet over the planar backbone. *)

let () =
  (* 1. Deploy 100 nodes uniformly in a 200 x 200 region; redraw until
     the unit disk graph with transmission radius 60 is connected, as
     the paper's simulations do. *)
  let rng = Wireless.Rand.create 42L in
  let points, attempts =
    Wireless.Deploy.connected_uniform rng ~n:100 ~side:200. ~radius:60.
      ~max_attempts:1000
  in
  Printf.printf "deployed %d nodes (connected after %d attempt(s))\n"
    (Array.length points) attempts;

  (* 2. One call builds the whole hierarchy: clustering -> connectors
     -> CDS family -> localized Delaunay planarization.  The [Config]
     record is the front door; [partition = Auto] switches to the
     tile-sharded CSR pipeline automatically on large instances, with
     bit-identical results.  (At million-node scale, prefer
     [Core.Backbone.snapshot], which returns sealed CSR structures and
     never materializes a mutable graph.) *)
  let bb =
    Core.Backbone.run
      { Core.Backbone.Config.default with Core.Backbone.Config.radius = 60. }
      points
  in

  let dominators =
    List.length (Core.Mis.dominators bb.Core.Backbone.cds.Core.Cds.roles)
  in
  let backbone = List.length (Core.Cds.backbone_nodes bb.Core.Backbone.cds) in
  Printf.printf "backbone: %d dominators, %d nodes total\n" dominators backbone;

  (* 3. The headline guarantees, checked live on this instance. *)
  let planar_backbone = bb.Core.Backbone.ldel_icds_g in
  Printf.printf "LDel(ICDS) is planar:      %b\n"
    (Netgraph.Planarity.is_planar planar_backbone points);
  Printf.printf "LDel(ICDS') spans all:     %b\n"
    (Netgraph.Components.is_connected bb.Core.Backbone.ldel_icds');
  let d = Netgraph.Metrics.degree_stats planar_backbone in
  Printf.printf "backbone max degree:       %d (avg %.2f)\n"
    d.Netgraph.Metrics.deg_max d.Netgraph.Metrics.deg_avg;

  let s =
    Netgraph.Metrics.stretch_factors ~base:bb.Core.Backbone.udg
      ~sub:bb.Core.Backbone.ldel_icds' points
  in
  Printf.printf "length stretch:            avg %.3f  max %.3f\n"
    s.Netgraph.Metrics.len_avg s.Netgraph.Metrics.len_max;
  Printf.printf "hop stretch:               avg %.3f  max %.3f\n"
    s.Netgraph.Metrics.hop_avg s.Netgraph.Metrics.hop_max;

  (* 4. Sparseness: the backbone keeps a linear number of links. *)
  Printf.printf "UDG edges %d  ->  backbone edges %d\n"
    (Netgraph.Graph.edge_count bb.Core.Backbone.udg)
    (Netgraph.Graph.edge_count planar_backbone);

  (* 5. Route a packet with dominating-set-based routing: direct to
     in-range destinations, via the planar backbone otherwise. *)
  match Core.Routing.hierarchical bb ~src:0 ~dst:(Array.length points - 1) with
  | Some path ->
    Printf.printf "route 0 -> %d: %s (%d hops)\n"
      (Array.length points - 1)
      (String.concat " -> " (List.map string_of_int path))
      (Netgraph.Traversal.path_hops path)
  | None -> print_endline "no route (should not happen on a connected UDG)"
