(* Routing demo: compare localized routing schemes on the constructed
   topologies — the workload GPSR-style protocols are built for.

     dune exec examples/routing_demo.exe

   For many random source/destination pairs we route with:
     - greedy forwarding on the raw UDG (fails at local minima),
     - greedy on the Gabriel graph (GPSR's classic planar substrate),
     - greedy + face recovery (GFG) on PLDel(V),
     - dominating-set-based routing over the planar backbone,
   and report delivery ratio and path quality.  Flooding (BFS) gives
   the optimal hop count for reference. *)

let () =
  let rng = Wireless.Rand.create 777L in
  let points, _ =
    Wireless.Deploy.connected_uniform rng ~n:150 ~side:250. ~radius:60.
      ~max_attempts:1000
  in
  let n = Array.length points in
  let bb =
    Core.Backbone.run
      { Core.Backbone.Config.default with Core.Backbone.Config.radius = 60. }
      points
  in
  let udg = bb.Core.Backbone.udg in
  let gg = Wireless.Proximity.gabriel_graph udg points in
  let pldel = (Core.Backbone.ldel_full bb).Core.Ldel.planar in

  Printf.printf "network: %d nodes, UDG %d edges, GG %d, PLDel %d, backbone %d\n\n"
    n
    (Netgraph.Graph.edge_count udg)
    (Netgraph.Graph.edge_count gg)
    (Netgraph.Graph.edge_count pldel)
    (Netgraph.Graph.edge_count bb.Core.Backbone.ldel_icds_g);

  let schemes =
    [
      ( "greedy / UDG",
        fun ~src ~dst -> Core.Routing.greedy udg points ~src ~dst );
      ("greedy / GG", fun ~src ~dst -> Core.Routing.greedy gg points ~src ~dst);
      ("GFG / GG", fun ~src ~dst -> Core.Routing.gfg gg points ~src ~dst);
      ( "GFG / PLDel(V)",
        fun ~src ~dst -> Core.Routing.gfg pldel points ~src ~dst );
      ( "DS-based / backbone",
        fun ~src ~dst -> Core.Routing.hierarchical bb ~src ~dst );
    ]
  in
  Printf.printf "%-22s %9s %12s %12s\n" "scheme" "delivery" "len stretch"
    "hop stretch";
  List.iter
    (fun (name, router) ->
      let ev =
        Core.Routing.evaluate ~router ~base:udg points ~pairs:300
          (Wireless.Rand.create 1L)
      in
      Printf.printf "%-22s %4d/%-4d %12.3f %12.3f\n" name
        ev.Core.Routing.delivered ev.Core.Routing.pairs
        ev.Core.Routing.avg_length_stretch ev.Core.Routing.avg_hop_stretch)
    schemes;

  (* one concrete route, end to end *)
  print_newline ();
  let src = 0 and dst = n - 1 in
  (match Core.Routing.greedy udg points ~src ~dst with
  | Some p ->
    Printf.printf "greedy %d->%d delivered in %d hops\n" src dst
      (Netgraph.Traversal.path_hops p)
  | None -> Printf.printf "greedy %d->%d stuck at a local minimum\n" src dst);
  match Core.Routing.hierarchical bb ~src ~dst with
  | Some p ->
    let sp = Netgraph.Traversal.bfs udg src in
    Printf.printf
      "dominating-set routing %d->%d: %d hops (flooding optimum %d)\n" src dst
      (Netgraph.Traversal.path_hops p)
      sp.(dst)
  | None -> Printf.printf "backbone routing failed (unexpected)\n"
