(* Mobility: maintaining the backbone while nodes move.

     dune exec examples/mobility.exe

   The paper's position: the logical backbone remains usable while
   none of its links stretch out of range, and because construction
   costs O(1) messages per node, refreshing it periodically is cheap.
   This demo drives a random-waypoint run and, whenever the backbone
   breaks, repairs it two ways:

     - rebuild:  re-run the paper's smallest-ID construction from
                 scratch;
     - refresh:  stability-first reclustering (Core.Maintenance) —
                 incumbent dominators keep their role unless movement
                 invalidated it.

   Both give identical guarantees; refresh flaps far fewer roles,
   which is what matters operationally (clusterhead hand-offs are the
   expensive part for higher layers). *)

let () =
  let radius = 60. and side = 200. in
  let rng = Wireless.Rand.create 555L in
  let init, _ =
    Wireless.Deploy.connected_uniform rng ~n:100 ~side ~radius
      ~max_attempts:1000
  in
  let n = Array.length init in

  let run name policy =
    let model =
      Wireless.Mobility.random_waypoint
        (Wireless.Rand.create 42L)
        ~side ~min_speed:2. ~max_speed:5. ~init
    in
    let bb =
      ref
        (Core.Backbone.run
           { Core.Backbone.Config.default with Core.Backbone.Config.radius }
           (Array.copy init))
    in
    let repairs = ref 0
    and churn = ref 0
    and edge_churn = ref 0
    and msgs = ref 0 in
    for _step = 1 to 30 do
      Wireless.Mobility.step model;
      let positions = Array.copy (Wireless.Mobility.positions model) in
      let broken = Core.Maintenance.needs_refresh !bb positions in
      if broken > 0 then begin
        let udg = Wireless.Udg.build positions ~radius in
        if Netgraph.Components.is_connected udg then begin
          let next, stats = policy !bb positions in
          incr repairs;
          churn := !churn + stats.Core.Maintenance.role_changes;
          edge_churn := !edge_churn + stats.Core.Maintenance.edge_changes;
          (* the paper's cost model: count the distributed messages a
             rebuild would take at these positions *)
          let pr = Core.Protocol.run positions ~radius in
          msgs :=
            !msgs
            + Distsim.Engine.total_sent (Core.Protocol.ldel_stats pr);
          bb := next
        end
      end
    done;
    Printf.printf "%-8s %8d %11d %11d %13.1f\n" name !repairs !churn
      !edge_churn
      (if !repairs = 0 then 0.
       else float_of_int !msgs /. float_of_int (!repairs * n))
  in
  Printf.printf "%d nodes, radius %g, 30 steps of random waypoint (2-5 u/step)\n\n"
    n radius;
  Printf.printf "%-8s %8s %11s %11s %13s\n" "policy" "repairs" "role churn"
    "edge churn" "msgs/node";
  run "rebuild" Core.Maintenance.rebuild;
  run "refresh" Core.Maintenance.refresh;
  Printf.printf
    "\nrefresh = stability-first reclustering: same guarantees, fewer\n\
     clusterhead hand-offs.  Message cost per repair stays O(1) per node\n\
     regardless of policy, as the paper promises.\n"
