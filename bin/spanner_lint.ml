(* spanner_lint — the repo's own static analyzer (see DESIGN.md §9).

   Exit codes are part of the contract:
     0  clean (no unsuppressed findings)
     1  unsuppressed findings
     2  usage error (unknown flag / rule, unreadable root or baseline)

   Arguments are parsed by hand rather than through Cmdliner so the
   usage-error exit code stays exactly 2. *)

let usage =
  "usage: spanner_lint [options]\n\n\
   Lint the repository's OCaml sources against the project invariants\n\
   (determinism, float robustness, multicore safety, hygiene).\n\n\
   options:\n\
  \  --root DIR         repository root to scan (default: .)\n\
  \  --json             emit kind-tagged JSON lines instead of text\n\
  \  --rule IDS         only run these comma-separated rules (e.g. D001,F002)\n\
  \  --baseline FILE    baseline file (default: ROOT/lint.baseline if present)\n\
  \  --no-baseline      ignore any baseline file\n\
  \  --write-baseline FILE  write current findings as a fresh baseline and exit\n\
  \  --list-rules       print the rule catalog and exit\n\
  \  --help             this message\n"

let die_usage msg =
  prerr_string (msg ^ "\n" ^ usage);
  exit 2

let list_rules () =
  List.iter
    (fun (r : Lint.Rules.rule) ->
      Printf.printf "%s  [%s, %s]  %s\n      %s\n" r.id r.family
        (Lint.Diag.severity_to_string r.severity)
        r.title r.doc)
    Lint.Rules.all

let () =
  let root = ref "." in
  let json = ref false in
  let rule_ids = ref [] in
  let baseline_path = ref None in
  let no_baseline = ref false in
  let write_baseline = ref None in
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
      print_string usage;
      exit 0
    | "--list-rules" :: _ ->
      list_rules ();
      exit 0
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--no-baseline" :: rest ->
      no_baseline := true;
      parse rest
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--rule" :: ids :: rest ->
      rule_ids := !rule_ids @ String.split_on_char ',' ids;
      parse rest
    | "--baseline" :: file :: rest ->
      baseline_path := Some file;
      parse rest
    | "--write-baseline" :: file :: rest ->
      write_baseline := Some file;
      parse rest
    | ("--root" | "--rule" | "--baseline" | "--write-baseline") :: [] ->
      die_usage "missing argument"
    | arg :: _ -> die_usage (Printf.sprintf "unknown argument %S" arg)
  in
  parse args;
  if not (Sys.file_exists !root && Sys.is_directory !root) then
    die_usage (Printf.sprintf "root %S is not a directory" !root);
  let rules =
    match !rule_ids with
    | [] -> Lint.Rules.all
    | ids ->
      List.map
        (fun id ->
          match Lint.Rules.find (String.trim id) with
          | Some r -> r
          | None -> die_usage (Printf.sprintf "unknown rule %S" id))
        ids
  in
  let baseline =
    if !no_baseline then []
    else
      let path, explicit =
        match !baseline_path with
        | Some p -> (p, true)
        | None -> (Filename.concat !root "lint.baseline", false)
      in
      if Sys.file_exists path then
        try Lint.Baseline.read path
        with Failure msg | Sys_error msg -> die_usage msg
      else if explicit then die_usage (Printf.sprintf "no baseline %S" path)
      else []
  in
  let res = Lint.Engine.run ~rules ~baseline !root in
  (match !write_baseline with
  | Some file ->
    let all = res.findings @ List.map fst res.grandfathered in
    let entries =
      Lint.Baseline.of_findings ~reason:"TODO: justify or fix"
        (List.sort Lint.Diag.compare all)
    in
    Lint.Baseline.write file entries;
    Printf.printf "spanner_lint: wrote %d baseline entries to %s\n"
      (List.length entries) file;
    exit 0
  | None -> ());
  if !json then begin
    List.iter
      (fun d -> print_endline (Lint.Diag.to_json_line d))
      res.findings;
    Printf.printf
      "{\"kind\":\"summary\",\"findings\":%d,\"grandfathered\":%d,\"suppressed\":%d,\"files\":%d}\n"
      (List.length res.findings)
      (List.length res.grandfathered)
      res.suppressed res.files
  end
  else begin
    List.iter
      (fun d -> Format.printf "%a@." Lint.Diag.pp d)
      res.findings;
    List.iter
      (fun (e : Lint.Baseline.entry) ->
        Printf.printf
          "note: stale baseline entry %s %s (%d grandfathered; fewer found)\n"
          e.rule e.file e.count)
      res.unused_baseline;
    Printf.printf
      "spanner_lint: %d finding%s, %d grandfathered, %d suppressed, %d files\n"
      (List.length res.findings)
      (if List.length res.findings = 1 then "" else "s")
      (List.length res.grandfathered)
      res.suppressed res.files
  end;
  exit (if res.findings = [] then 0 else 1)
