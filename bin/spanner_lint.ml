(* spanner_lint — the repo's own static analyzer (see DESIGN.md §9, §15).

   Exit codes are part of the contract:
     0  clean (no unsuppressed findings)
     1  unsuppressed findings (or, under --strict, stale baseline entries)
     2  usage error (unknown flag / rule, unreadable root or baseline)

   Arguments are parsed by hand rather than through Cmdliner so the
   usage-error exit code stays exactly 2. *)

let usage =
  "usage: spanner_lint [options]\n\
  \       spanner_lint graph [--root DIR] [--dot FILE] [--summary FUNC] \
   [--json]\n\n\
   Lint the repository's OCaml sources against the project invariants\n\
   (determinism, float robustness, multicore safety, hygiene).  The\n\
   determinism/multicore rules are interprocedural: effect summaries are\n\
   propagated over the call graph and findings fire only on sites\n\
   reachable from a Netgraph.Pool parallel callback, with the witness\n\
   call chain in the message.\n\n\
   options:\n\
  \  --root DIR         repository root to scan (default: .)\n\
  \  --json             emit kind-tagged JSON lines instead of text\n\
  \  --rule IDS         only run these comma-separated rules (e.g. D001,F002)\n\
  \  --baseline FILE    baseline file (default: ROOT/lint.baseline if present)\n\
  \  --no-baseline      ignore any baseline file\n\
  \  --strict           stale baseline entries are a hard failure (exit 1)\n\
  \  --write-baseline FILE  write current findings as a fresh baseline\n\
  \                     (pruning stale entries, keeping reasons) and exit\n\
  \  --list-rules       print the rule catalog and exit\n\
  \  --help             this message\n\n\
   graph subcommand (call-graph and effect-summary introspection):\n\
  \  --dot FILE         write the effect-colored DOT call graph ('-' = stdout)\n\
  \  --summary FUNC     print FUNC's effect set and parallel witness chain\n\
  \  --json             print the {functions, edges, seeds, reachable} summary\n"

let die_usage msg =
  prerr_string (msg ^ "\n" ^ usage);
  exit 2

let known_rule id =
  Lint.Rules.find id <> None || Lint.Effects.find_rule id <> None

let list_rules () =
  List.iter
    (fun (r : Lint.Effects.rule_info) ->
      Printf.printf "%s  [%s, %s]  %s\n      %s\n" r.id r.family
        (Lint.Diag.severity_to_string r.severity)
        r.title r.doc)
    Lint.Effects.rules;
  List.iter
    (fun (r : Lint.Rules.rule) ->
      Printf.printf "%s  [%s, %s]  %s\n      %s\n" r.id r.family
        (Lint.Diag.severity_to_string r.severity)
        r.title r.doc)
    Lint.Rules.all

(* ---------- graph subcommand ---------- *)

let load_analysis root =
  if not (Sys.file_exists root && Sys.is_directory root) then
    die_usage (Printf.sprintf "root %S is not a directory" root);
  let lib_files =
    Lint.Engine.project_files root
    |> List.filter (fun (p, _) ->
           String.length p > 4 && String.sub p 0 4 = "lib/")
  in
  Lint.Effects.analyze (Lint.Callgraph.of_sources lib_files)

let run_graph args =
  let root = ref "." in
  let dot = ref None in
  let summary = ref None in
  let json = ref false in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
      print_string usage;
      exit 0
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--dot" :: file :: rest ->
      dot := Some file;
      parse rest
    | "--summary" :: f :: rest ->
      summary := Some f;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | ("--root" | "--dot" | "--summary") :: [] -> die_usage "missing argument"
    | arg :: _ -> die_usage (Printf.sprintf "unknown argument %S" arg)
  in
  parse args;
  let a = load_analysis !root in
  (match !dot with
  | Some "-" -> print_string (Lint.Effects.to_dot a)
  | Some file ->
    let oc = open_out_bin file in
    output_string oc (Lint.Effects.to_dot a);
    close_out oc
  | None -> ());
  (match !summary with
  | Some f -> (
    match Lint.Effects.function_summary a f with
    | Some s -> print_string s
    | None -> die_usage (Printf.sprintf "unknown function %S" f))
  | None -> ());
  let s = Lint.Effects.stats a in
  if !json then print_endline (Lint.Effects.stats_json s)
  else if !dot = None && !summary = None then
    Printf.printf
      "spanner_lint graph: %d functions, %d edges, %d parallel seeds, %d \
       reachable\n"
      s.s_functions s.s_edges s.s_seeds s.s_reachable;
  exit 0

(* ---------- main lint driver ---------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (match args with "graph" :: rest -> run_graph rest | _ -> ());
  let root = ref "." in
  let json = ref false in
  let rule_ids = ref [] in
  let baseline_path = ref None in
  let no_baseline = ref false in
  let strict = ref false in
  let write_baseline = ref None in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
      print_string usage;
      exit 0
    | "--list-rules" :: _ ->
      list_rules ();
      exit 0
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--no-baseline" :: rest ->
      no_baseline := true;
      parse rest
    | "--strict" :: rest ->
      strict := true;
      parse rest
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--rule" :: ids :: rest ->
      rule_ids := !rule_ids @ String.split_on_char ',' ids;
      parse rest
    | "--baseline" :: file :: rest ->
      baseline_path := Some file;
      parse rest
    | "--write-baseline" :: file :: rest ->
      write_baseline := Some file;
      parse rest
    | ("--root" | "--rule" | "--baseline" | "--write-baseline") :: [] ->
      die_usage "missing argument"
    | arg :: _ -> die_usage (Printf.sprintf "unknown argument %S" arg)
  in
  parse args;
  if not (Sys.file_exists !root && Sys.is_directory !root) then
    die_usage (Printf.sprintf "root %S is not a directory" !root);
  let only =
    match !rule_ids with
    | [] -> None
    | ids ->
      Some
        (List.map
           (fun id ->
             let id = String.trim id in
             if known_rule id then id
             else die_usage (Printf.sprintf "unknown rule %S" id))
           ids)
  in
  let baseline =
    if !no_baseline then []
    else
      let path, explicit =
        match !baseline_path with
        | Some p -> (p, true)
        | None -> (Filename.concat !root "lint.baseline", false)
      in
      if Sys.file_exists path then
        try Lint.Baseline.read path
        with Failure msg | Sys_error msg -> die_usage msg
      else if explicit then die_usage (Printf.sprintf "no baseline %S" path)
      else []
  in
  let res = Lint.Engine.run ?only ~baseline !root in
  (match !write_baseline with
  | Some file ->
    let all = res.findings @ List.map fst res.grandfathered in
    let entries =
      Lint.Baseline.of_findings ~reason:"TODO: justify or fix"
        (List.sort Lint.Diag.compare all)
      |> Lint.Baseline.merge_reasons ~old:baseline
    in
    Lint.Baseline.write file entries;
    Printf.printf "spanner_lint: wrote %d baseline entries to %s\n"
      (List.length entries) file;
    exit 0
  | None -> ());
  if !json then begin
    List.iter
      (fun d -> print_endline (Lint.Diag.to_json_line d))
      res.findings;
    Printf.printf
      "{\"kind\":\"summary\",\"findings\":%d,\"grandfathered\":%d,\"suppressed\":%d,\"files\":%d,\"stale_baseline\":%d}\n"
      (List.length res.findings)
      (List.length res.grandfathered)
      res.suppressed res.files
      (List.length res.unused_baseline)
  end
  else begin
    List.iter
      (fun d -> Format.printf "%a@." Lint.Diag.pp d)
      res.findings;
    List.iter
      (fun (e : Lint.Baseline.entry) ->
        Printf.printf
          "%s: stale baseline entry %s %s (%d grandfathered; fewer found)\n"
          (if !strict then "error" else "note")
          e.rule e.file e.count)
      res.unused_baseline;
    Printf.printf
      "spanner_lint: %d finding%s, %d grandfathered, %d suppressed, %d files\n"
      (List.length res.findings)
      (if List.length res.findings = 1 then "" else "s")
      (List.length res.grandfathered)
      res.suppressed res.files
  end;
  let stale_fail = !strict && res.unused_baseline <> [] in
  exit (if res.findings = [] && not stale_fail then 0 else 1)
