(* spanner — command-line front end for the geometric-spanner library.

   Subcommands:
     generate   draw a node deployment and print/save it as CSV
     build      construct the backbone structures and print statistics
     measure    Table-I style quality rows for one instance
     route      route a packet between two nodes
     protocol   run the distributed protocol and report message costs
     dump       emit a structure's edge list (for plotting)
     broadcast  compare network-wide broadcast relay disciplines
     lifetime   simulate battery drain and clusterhead rotation
     experiment regenerate a table/figure from the paper
     trace      audit protocol message complexity under the event tracer
     monitor    re-check the paper's invariants every round under mobility
     serve      answer route queries from epoch-pinned snapshots at rate

   Deployments are deterministic given --seed; a CSV written by
   `generate` can be fed back to every other subcommand via --input. *)

open Cmdliner
module Config = Core.Backbone.Config

(* ---------------- shared options ---------------- *)

let stats =
  let doc =
    "After the run, report observability counters (predicate calls, exact \
     fallbacks, grid queries, Delaunay insertions, protocol messages) and \
     per-stage timing spans to stderr.  $(docv) is pretty, json or csv; \
     bare $(b,--stats) means pretty.  Counter values are deterministic for \
     a fixed --seed; span durations are wall-clock."
  in
  Arg.(
    value
    & opt ~vopt:(Some "pretty") (some string) None
    & info [ "stats" ] ~docv:"FORMAT" ~doc)

(* Run [f] with the observability layer on and report to stderr in the
   requested format.  Returns the exit code of [f], or 2 on an unknown
   format. *)
let with_stats fmt_name f =
  match fmt_name with
  | None -> f ()
  | Some fmt_name -> (
    match Obs.named_sink Format.err_formatter fmt_name with
    | None ->
      Printf.eprintf "unknown stats format %S (expected pretty, json or csv)\n"
        fmt_name;
      2
    | Some sink ->
      Obs.set_enabled true;
      let code = f () in
      Obs.report sink;
      code)

let trace_file =
  let doc =
    "Record a structured event trace during the run (timing spans, counter \
     deltas, protocol send/deliver events) and write it to $(docv) in \
     Chrome trace-event JSON — loadable in chrome://tracing or Perfetto.  \
     Implies the observability layer is on for the run."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Export a recorded trace as Chrome JSON, then validate the file by
   parsing it back.  Returns 0, or 1 when validation fails. *)
let export_trace ?(flows = []) file evs =
  let oc = open_out file in
  let fmt = Format.formatter_of_out_channel oc in
  Obs.Trace.write_chrome ~flows fmt evs;
  Format.pp_print_flush fmt ();
  close_out oc;
  let ic = open_in_bin file in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Obs.Trace.read_chrome contents with
  | parsed when List.length parsed = List.length evs ->
    Printf.eprintf "trace: wrote %d events to %s%s\n" (List.length evs) file
      (let d = Obs.Trace.dropped () in
       if d > 0 then Printf.sprintf " (%d oldest events dropped)" d else "");
    0
  | parsed ->
    Printf.eprintf "trace: %s round-trip mismatch (%d written, %d parsed)\n"
      file (List.length evs) (List.length parsed);
    1
  | exception Failure msg ->
    Printf.eprintf "trace: %s failed to validate: %s\n" file msg;
    1

let with_trace trace_file f =
  match trace_file with
  | None -> f ()
  | Some file ->
    let was = Obs.enabled () in
    Obs.set_enabled true;
    Obs.Trace.start ~capacity:(1 lsl 20) ();
    let code = f () in
    Obs.Trace.stop ();
    Obs.set_enabled was;
    let vcode = export_trace file (Obs.Trace.events ()) in
    if code <> 0 then code else vcode

let listen_arg =
  let doc =
    "Serve live introspection over HTTP on 127.0.0.1:$(docv) for the \
     duration of the run: $(b,/metrics) (Prometheus text exposition), \
     $(b,/healthz), $(b,/debug/ring) (the flight-recorder ring as JSON) \
     and, under $(b,serve), $(b,/epoch).  Port 0 picks a free port \
     (printed to stderr).  Implies the observability layer is on; \
     $(b,SIGUSR2) dumps the flight recorder to stderr while listening.  \
     Before exit the command scrapes its own endpoint and fails unless \
     the exposition parses and matches the in-process snapshot exactly."
  in
  Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT" ~doc)

(* Run [f] with the exposition listener live, passing it the bound
   port.  On the way out, scrape our own /metrics, re-parse the text
   and cross-check every value against a fresh in-process snapshot —
   exit 1 on any disagreement, in the export_trace self-validation
   tradition.  Safe because the registry is single-writer: once [f]
   returns, the main thread records nothing more, so the scrape the
   listener serves and the snapshot we capture here must agree. *)
let with_listen ?health ?routes listen f =
  match listen with
  | None -> f None
  | Some port ->
    Obs.set_enabled true;
    Obs.Recorder.arm_gc_alarm ();
    let h = Obs.Export.start ?health ?routes ~port () in
    let port = Obs.Export.port h in
    Printf.eprintf "listen: serving http://127.0.0.1:%d/metrics\n%!" port;
    let prev =
      Sys.signal Sys.sigusr2
        (Sys.Signal_handle
           (fun _ ->
             Obs.Recorder.dump Format.err_formatter ();
             Format.pp_print_flush Format.err_formatter ()))
    in
    Fun.protect
      ~finally:(fun () ->
        Sys.set_signal Sys.sigusr2 prev;
        Obs.Recorder.disarm_gc_alarm ();
        Obs.Export.stop h)
    @@ fun () ->
    let code = f (Some port) in
    let scrape_code =
      match Obs.Export.get ~port "/metrics" with
      | exception e ->
        Printf.eprintf "listen: final scrape failed: %s\n"
          (Printexc.to_string e);
        1
      | status, body -> (
        if not (String.length status >= 12 && String.sub status 9 3 = "200")
        then begin
          Printf.eprintf "listen: /metrics returned %S\n" status;
          1
        end
        else
          match Obs.Export.parse_exposition body with
          | exception Failure msg ->
            Printf.eprintf "listen: /metrics failed to parse: %s\n" msg;
            1
          | samples -> (
            match
              Obs.Export.check_snapshot samples (Obs.Snapshot.capture ())
            with
            | [] ->
              Printf.eprintf
                "listen: final scrape ok (%d samples, %d scrapes served)\n"
                (List.length samples)
                (Obs.Export.scrape_count h);
              0
            | errs ->
              List.iter
                (fun e -> Printf.eprintf "listen: scrape mismatch: %s\n" e)
                errs;
              1))
    in
    if code <> 0 then code else scrape_code

let seed =
  let doc = "Random seed for the deployment." in
  Arg.(value & opt int64 2002L & info [ "seed" ] ~docv:"SEED" ~doc)

let nodes =
  let doc = "Number of wireless nodes." in
  Arg.(value & opt int 100 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let side =
  let doc = "Side of the square deployment region." in
  Arg.(value & opt float 200. & info [ "side" ] ~docv:"S" ~doc)

let radius =
  let doc = "Transmission radius (all nodes share it)." in
  Arg.(value & opt float 60. & info [ "r"; "radius" ] ~docv:"R" ~doc)

let input =
  let doc = "Read the deployment from a CSV file (id,x,y per line)." in
  Arg.(value & opt (some string) None & info [ "input" ] ~docv:"FILE" ~doc)

let connected =
  let doc = "Redraw deployments until the unit disk graph is connected." in
  Arg.(value & flag & info [ "connected" ] ~doc)

let jobs =
  let doc =
    "Worker domains for the stretch metrics (default: the machine's \
     recommended domain count).  Results are bit-identical for any value; \
     only wall-clock time changes."
  in
  Arg.(
    value
    & opt int (Netgraph.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let partition =
  let doc =
    "Construction partition: $(b,auto) runs the sharded CSR pipeline on \
     grid tiles for large instances (>= 5000 nodes), $(b,serial) forces \
     the legacy single-domain Hashtbl build, and a positive integer \
     $(docv) forces tile-sharding with that many tiles per axis.  Every \
     mode produces bit-identical structures; only construction speed \
     changes."
  in
  let part_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "auto" -> Ok Config.Auto
      | "serial" -> Ok Config.Serial
      | s -> (
        match int_of_string_opt s with
        | Some k when k >= 1 -> Ok (Config.Tiles k)
        | _ ->
          Error
            (`Msg
              (Printf.sprintf
                 "expected auto, serial or a positive tile count, got %S" s)))
    in
    let print fmt = function
      | Config.Auto -> Format.pp_print_string fmt "auto"
      | Config.Serial -> Format.pp_print_string fmt "serial"
      | Config.Tiles k -> Format.pp_print_int fmt k
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt part_conv Config.Auto
    & info [ "partition"; "tiles" ] ~docv:"PART" ~doc)

(* ---------------- deployment I/O ---------------- *)

let load_csv file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> begin
      match String.split_on_char ',' (String.trim line) with
      | [ _id; x; y ] ->
        go (Geometry.Point.make (float_of_string x) (float_of_string y) :: acc)
      | [] | [ "" ] -> go acc
      | _ -> failwith (Printf.sprintf "bad CSV line: %S" line)
    end
    | exception End_of_file ->
      close_in ic;
      Array.of_list (List.rev acc)
  in
  go []

let save_csv oc pts =
  Array.iteri
    (fun i (p : Geometry.Point.t) -> Printf.fprintf oc "%d,%.6f,%.6f\n" i p.x p.y)
    pts

let deployment ~seed ~n ~side ~radius ~connected ~input =
  match input with
  | Some file -> load_csv file
  | None ->
    let rng = Wireless.Rand.create seed in
    if connected then
      fst
        (Wireless.Deploy.connected_uniform rng ~n ~side ~radius
           ~max_attempts:5000)
    else Wireless.Deploy.uniform rng ~n ~side

(* ---------------- generate ---------------- *)

let generate_cmd =
  let output =
    let doc = "Write the deployment to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run seed n side radius connected output stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let pts = deployment ~seed ~n ~side ~radius ~connected ~input:None in
    (match output with
    | Some file ->
      let oc = open_out file in
      save_csv oc pts;
      close_out oc;
      Printf.printf "wrote %d nodes to %s\n" (Array.length pts) file
    | None -> save_csv stdout pts);
    0
  in
  let doc = "draw a random node deployment" in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ connected $ output $ stats
      $ trace_file)

(* ---------------- build ---------------- *)

let build_cmd =
  let run seed n side radius input jobs partition stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
    let bb =
      Core.Backbone.run
        { Config.default with Config.radius; jobs; partition }
        pts
    in
    let roles = bb.Core.Backbone.cds.Core.Cds.roles in
    let dominators =
      Array.fold_left
        (fun acc r -> if r = Core.Mis.Dominator then acc + 1 else acc)
        0 roles
    in
    let connectors =
      Array.fold_left
        (fun acc c -> if c then acc + 1 else acc)
        0 bb.Core.Backbone.cds.Core.Cds.connectors.Core.Connectors.connector
    in
    Printf.printf "nodes:       %d\n" (Array.length pts);
    Printf.printf "radius:      %g\n" radius;
    Printf.printf "dominators:  %d\n" dominators;
    Printf.printf "connectors:  %d\n" connectors;
    Printf.printf "%-13s %8s %8s %8s\n" "structure" "edges" "deg_avg" "deg_max";
    List.iter
      (fun (name, g, _) ->
        let d = Netgraph.Metrics.degree_stats g in
        Printf.printf "%-13s %8d %8.2f %8d\n" name d.Netgraph.Metrics.edges
          d.Netgraph.Metrics.deg_avg d.Netgraph.Metrics.deg_max)
      (Core.Backbone.structures bb);
    Printf.printf "planar backbone: %b\n"
      (Netgraph.Planarity.is_planar bb.Core.Backbone.ldel_icds_g pts);
    0
  in
  let doc = "construct all backbone structures and print statistics" in
  Cmd.v
    (Cmd.info "build" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ input $ jobs $ partition
      $ stats $ trace_file)

(* ---------------- measure ---------------- *)

let measure_cmd =
  let run seed n side radius input jobs partition stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
    let bb =
      Core.Backbone.run
        { Config.default with Config.radius; jobs; partition }
        pts
    in
    let rows = Core.Quality.rows bb in
    Format.printf "%a@." Core.Quality.pp_agg_header ();
    List.iter (fun r -> Format.printf "%a@." Core.Quality.pp_row r) rows;
    0
  in
  let doc = "measure Table-I quality metrics on one instance" in
  Cmd.v
    (Cmd.info "measure" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ input $ jobs $ partition
      $ stats $ trace_file)

(* ---------------- route ---------------- *)

let route_cmd =
  let src =
    Arg.(required & opt (some int) None & info [ "src" ] ~docv:"NODE" ~doc:"Source node id.")
  in
  let dst =
    Arg.(required & opt (some int) None & info [ "dst" ] ~docv:"NODE" ~doc:"Destination node id.")
  in
  let scheme =
    let doc = "Routing scheme: greedy, gfg, or hierarchical." in
    Arg.(
      value
      & opt (enum [ ("greedy", `Greedy); ("gfg", `Gfg); ("hierarchical", `Hier) ]) `Hier
      & info [ "scheme" ] ~docv:"SCHEME" ~doc)
  in
  let run seed n side radius input src dst scheme stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
    let bb = Core.Backbone.run { Config.default with Config.radius } pts in
    let result =
      match scheme with
      | `Greedy -> Core.Routing.greedy bb.Core.Backbone.udg pts ~src ~dst
      | `Gfg ->
        let planar = (Core.Backbone.ldel_full bb).Core.Ldel.planar in
        Core.Routing.gfg planar pts ~src ~dst
      | `Hier -> Core.Routing.hierarchical bb ~src ~dst
    in
    match result with
    | Some path ->
      Printf.printf "path (%d hops, length %.2f): %s\n"
        (Netgraph.Traversal.path_hops path)
        (Netgraph.Traversal.path_length pts path)
        (String.concat " -> " (List.map string_of_int path));
      (match
         Netgraph.Metrics.pair_stretch ~base:bb.Core.Backbone.udg
           ~sub:bb.Core.Backbone.udg pts src dst
       with
      | Some _ ->
        let sp = Netgraph.Traversal.dijkstra bb.Core.Backbone.udg pts src in
        if sp.(dst) > 0. then
          Printf.printf "stretch vs UDG shortest path: %.3f\n"
            (Netgraph.Traversal.path_length pts path /. sp.(dst))
      | None -> ());
      0
    | None ->
      Printf.eprintf "no route found (%d -> %d)\n" src dst;
      1
  in
  let doc = "route a packet between two nodes" in
  Cmd.v
    (Cmd.info "route" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ input $ src $ dst $ scheme
      $ stats $ trace_file)

(* ---------------- protocol ---------------- *)

let protocol_cmd =
  let run seed n side radius input stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
    let r = Core.Protocol.run pts ~radius in
    let phase name stats =
      Printf.printf "%-12s rounds=%-4d total=%-6d max/node=%-4d avg/node=%.2f\n"
        name stats.Distsim.Engine.rounds
        (Distsim.Engine.total_sent stats)
        (Distsim.Engine.max_sent stats)
        (Distsim.Engine.avg_sent stats)
    in
    phase "clustering" r.Core.Protocol.stats_cluster;
    phase "connectors" r.Core.Protocol.stats_connector;
    phase "status" r.Core.Protocol.stats_status;
    phase "ldel" r.Core.Protocol.stats_ldel;
    phase "TOTAL" (Core.Protocol.ldel_stats r);
    Printf.printf "message kinds:\n";
    List.iter
      (fun (k, c) -> Printf.printf "  %-20s %d\n" k c)
      (Core.Protocol.ldel_stats r).Distsim.Engine.by_kind;
    Printf.printf "distributed PLDel(ICDS): %d edges, planar=%b\n"
      (Netgraph.Graph.edge_count r.Core.Protocol.ldel_graph)
      (Netgraph.Planarity.is_planar r.Core.Protocol.ldel_graph pts);
    0
  in
  let doc = "run the distributed construction and report message costs" in
  Cmd.v
    (Cmd.info "protocol" ~doc)
    Term.(const run $ seed $ nodes $ side $ radius $ input $ stats $ trace_file)

(* ---------------- dump ---------------- *)

let dump_cmd =
  let structure =
    (* valid names come from the registry — the single source of the
       Table I structure list *)
    let doc =
      Printf.sprintf "Structure to dump: %s."
        (String.concat ", "
           (List.map String.lowercase_ascii Core.Backbone.names))
    in
    Arg.(value & opt string "ldel(icds)" & info [ "structure" ] ~docv:"NAME" ~doc)
  in
  let run seed n side radius input structure stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
    let bb = Core.Backbone.run { Config.default with Config.radius } pts in
    let canonical s =
      String.lowercase_ascii
        (String.concat ""
           (String.split_on_char '('
              (String.concat "" (String.split_on_char ')' s))))
    in
    let target = canonical structure in
    let target =
      String.concat "" (String.split_on_char '-' target)
    in
    match
      List.find_opt
        (fun (name, _, _) ->
          String.concat "" (String.split_on_char '-' (canonical name)) = target)
        (Core.Backbone.structures bb)
    with
    | Some (name, g, _) ->
      Printf.printf "# %s: %d nodes, %d edges\n" name
        (Netgraph.Graph.node_count g) (Netgraph.Graph.edge_count g);
      Netgraph.Graph.iter_edges g (fun u v ->
          let (pu : Geometry.Point.t) = pts.(u)
          and (pv : Geometry.Point.t) = pts.(v) in
          Printf.printf "%d,%d,%.4f,%.4f,%.4f,%.4f\n" u v pu.x pu.y pv.x pv.y);
      0
    | None ->
      Printf.eprintf "unknown structure %S\n" structure;
      1
  in
  let doc = "emit a structure's edge list as CSV (u,v,x1,y1,x2,y2)" in
  Cmd.v
    (Cmd.info "dump" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ input $ structure $ stats
      $ trace_file)

(* ---------------- broadcast ---------------- *)

let broadcast_cmd =
  let source =
    Arg.(value & opt int 0 & info [ "source" ] ~docv:"NODE" ~doc:"Originating node.")
  in
  let run seed n side radius input source stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
    let udg = Wireless.Udg.build pts ~radius in
    let cds = Core.Cds.of_udg udg in
    let report name (o : Core.Broadcast.outcome) =
      Printf.printf "%-12s %6d transmissions  %5.1f%% coverage  %d rounds\n"
        name o.Core.Broadcast.transmissions
        (100. *. Core.Broadcast.coverage o)
        o.Core.Broadcast.rounds
    in
    report "flood" (Core.Broadcast.flood udg ~source);
    report "rng-relay" (Core.Broadcast.rng_relay udg pts ~source);
    report "backbone" (Core.Broadcast.backbone_broadcast udg cds ~source);
    0
  in
  let doc = "broadcast one packet network-wide and compare relay disciplines" in
  Cmd.v
    (Cmd.info "broadcast" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ input $ source $ stats
      $ trace_file)

(* ---------------- lifetime ---------------- *)

let lifetime_cmd =
  let epochs =
    Arg.(value & opt int 100 & info [ "epochs" ] ~docv:"E" ~doc:"Epochs to simulate.")
  in
  let battery =
    Arg.(value & opt float 2e8 & info [ "battery" ] ~docv:"J" ~doc:"Initial battery per node.")
  in
  let beta =
    Arg.(value & opt float 3. & info [ "beta" ] ~docv:"B" ~doc:"Path-loss exponent.")
  in
  let run seed n side radius input epochs battery beta stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
    let sink = 0 in
    Printf.printf "%-18s %12s %7s %9s\n" "policy" "first death" "deaths"
      "delivery";
    List.iter
      (fun (name, policy) ->
        let r =
          Core.Energy.run pts ~radius ~sink ~policy ~epochs ~battery ~beta
        in
        Printf.printf "%-18s %12s %7d %9.3f\n" name
          (match r.Core.Energy.first_death with
          | Some e -> string_of_int e
          | None -> "-")
          (List.length r.Core.Energy.deaths)
          (Core.Energy.delivery_ratio r))
      [
        ("static", Core.Energy.Static);
        ("rotate every 5", Core.Energy.Energy_aware 5);
      ];
    0
  in
  let doc = "simulate network lifetime under the d^beta power model" in
  Cmd.v
    (Cmd.info "lifetime" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ input $ epochs $ battery
      $ beta $ stats $ trace_file)

(* ---------------- experiment ---------------- *)

let experiment_cmd =
  let which =
    let doc = "Artifact: table1, fig8, fig9, fig10, fig11 or fig12." in
    Arg.(value & pos 0 string "table1" & info [] ~docv:"ARTIFACT" ~doc)
  in
  let instances =
    Arg.(value & opt int 3 & info [ "instances" ] ~docv:"K" ~doc:"Vertex sets per point.")
  in
  let run which instances jobs stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let cfg = { Core.Experiments.default with instances; jobs } in
    match which with
    | "table1" ->
      let aggs = Core.Experiments.table1 ~cfg ~n:100 ~radius:60. () in
      Format.printf "%a@." Core.Quality.pp_agg_header ();
      List.iter (fun a -> Format.printf "%a@." Core.Quality.pp_agg a) aggs;
      0
    | "fig8" ->
      Format.printf "%a@." Core.Experiments.pp_series
        (Core.Experiments.degree_vs_n ~cfg ~radius:60. ());
      0
    | "fig9" ->
      Format.printf "%a@." Core.Experiments.pp_series
        (Core.Experiments.stretch_vs_n ~cfg ~radius:60. ());
      0
    | "fig10" ->
      Format.printf "%a@." Core.Experiments.pp_series
        (Core.Experiments.comm_vs_n ~cfg ~radius:60. ());
      0
    | "fig11" ->
      Format.printf "%a@." Core.Experiments.pp_series
        (Core.Experiments.stretch_vs_radius ~cfg ~n:500 ());
      0
    | "fig12" ->
      Format.printf "%a@." Core.Experiments.pp_series
        (Core.Experiments.comm_and_degree_vs_radius ~cfg ~n:500 ());
      0
    | other ->
      Printf.eprintf "unknown artifact %S\n" other;
      1
  in
  let doc = "regenerate one of the paper's tables or figures" in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(const run $ which $ instances $ jobs $ stats $ trace_file)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let sizes_arg =
    let doc =
      "Comma-separated instance sizes for the message-complexity fit (at \
       least 3 distinct values).  Default: n/4, n/2, n."
    in
    Arg.(
      value & opt (some string) None & info [ "sizes" ] ~docv:"N1,N2,.." ~doc)
  in
  let out =
    let doc =
      "Write the largest run's Chrome trace-event JSON to $(docv) \
       (chrome://tracing / Perfetto)."
    in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let folded =
    let doc =
      "Write the largest run's folded span stacks to $(docv) \
       (flamegraph.pl input)."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE" ~doc)
  in
  let critical_path_arg =
    let doc =
      "Reconstruct the happens-before DAG from the trace: print a \
       per-phase causal audit (critical-path depth in message hops, \
       rounds spanned, width, per-node attribution), report causality \
       violations, and gate clustering's causal depth across the size \
       sweep (must stay bounded, or the command exits non-zero).  With \
       $(b,--out), the critical path is exported as Chrome flow arrows."
    in
    Arg.(value & flag & info [ "critical-path" ] ~doc)
  in
  let dot_arg =
    let doc =
      "Write the smallest run's happens-before DAG to $(docv) in DOT \
       (one node per protocol event — keep n small)."
    in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let deep_fixture_arg =
    let doc =
      "Replace the paper's protocol with a token-relay chain whose \
       causal depth grows linearly in n.  Negative smoke for the \
       causal-depth gate: message totals stay O(n) (the slope gate \
       passes) but the depth gate must fail."
    in
    Arg.(value & flag & info [ "deep-fixture" ] ~doc)
  in
  let run seed n side radius sizes out folded critical_path dot deep_fixture =
    let sizes =
      match sizes with
      | Some s ->
        List.sort_uniq compare
          (List.map
             (fun x -> int_of_string (String.trim x))
             (String.split_on_char ',' s))
      | None -> List.sort_uniq compare [ max 20 (n / 4); max 20 (n / 2); n ]
    in
    if List.length sizes < 3 then begin
      Printf.eprintf "trace: need at least 3 distinct sizes for the slope fit\n";
      2
    end
    else begin
      let was = Obs.enabled () in
      Obs.set_enabled true;
      (* One protocol run per size, each with a fresh trace.  Events are
         harvested before the next [start] resets the ring buffers.
         Each run yields its per-phase engine stats so the audit below
         works for both the real protocol and the deep fixture. *)
      let deep_run size =
        (* Token relay over a path graph: node 0 fires, each node
           forwards on hearing its predecessor.  O(n) messages but a
           causal chain of depth n-1 — the depth gate's negative
           fixture. *)
        let g =
          Netgraph.Graph.of_edges size
            (List.init (size - 1) (fun i -> (i, i + 1)))
        in
        let protocol =
          {
            Distsim.Engine.init = (fun i _ -> i = 0);
            on_round =
              (fun ctx fired inbox ->
                if ctx.Distsim.Engine.round = 0 && ctx.Distsim.Engine.me = 0
                then begin
                  ctx.Distsim.Engine.broadcast 0;
                  true
                end
                else if
                  (not fired)
                  && List.exists
                       (fun (d : int Distsim.Engine.delivery) ->
                         d.Distsim.Engine.msg = ctx.Distsim.Engine.me - 1)
                       inbox
                then begin
                  ctx.Distsim.Engine.broadcast ctx.Distsim.Engine.me;
                  true
                end
                else fired);
          }
        in
        let _, st =
          Obs.span "protocol" (fun () ->
              Obs.span "cluster" (fun () ->
                  Distsim.Engine.run ~classify:(fun _ -> "Token") g protocol))
        in
        [ ("cluster", st) ]
      in
      let runs =
        List.map
          (fun size ->
            Obs.reset ();
            Obs.Trace.start ~capacity:(1 lsl 21) ();
            let phase_stats =
              if deep_fixture then deep_run size
              else begin
                let rng =
                  Wireless.Rand.create (Int64.add seed (Int64.of_int size))
                in
                let pts, _ =
                  Wireless.Deploy.connected_uniform rng ~n:size ~side ~radius
                    ~max_attempts:5000
                in
                let r = Core.Protocol.run pts ~radius in
                List.combine Core.Protocol.phases
                  [
                    r.Core.Protocol.stats_cluster;
                    r.Core.Protocol.stats_connector;
                    r.Core.Protocol.stats_status;
                    r.Core.Protocol.stats_ldel;
                  ]
              end
            in
            Obs.Trace.stop ();
            (size, phase_stats, Obs.Trace.events (), Obs.Trace.dropped ()))
          sizes
      in
      Obs.set_enabled was;
      let size_l, stats_l, evs_l, dropped_l =
        List.nth runs (List.length runs - 1)
      in
      if dropped_l > 0 then
        Printf.eprintf
          "trace: warning: ring buffer overflowed, %d oldest events dropped \
           (n=%d) — message totals below are partial\n"
          dropped_l size_l;
      (* per-phase, per-kind message audit for the largest instance *)
      let audit = Obs.Trace.message_audit evs_l in
      Printf.printf "message audit (n=%d, radius %g, seed %Ld):\n" size_l radius
        seed;
      Printf.printf "  %-20s %-20s %9s %11s %10s\n" "phase" "kind" "sends"
        "deliveries" "sends/node";
      List.iter
        (fun (row : Obs.Trace.audit_row) ->
          Printf.printf "  %-20s %-20s %9d %11d %10.2f\n" row.Obs.Trace.a_phase
            row.Obs.Trace.a_kind row.Obs.Trace.a_sends
            row.Obs.Trace.a_deliveries
            (float_of_int row.Obs.Trace.a_sends /. float_of_int size_l))
        audit;
      (* phase totals, cross-checked against the engine's own counters *)
      let phase_sends phase =
        List.fold_left
          (fun acc (row : Obs.Trace.audit_row) ->
            if row.Obs.Trace.a_phase = phase then acc + row.Obs.Trace.a_sends
            else acc)
          0 audit
      in
      let audit_ok = ref true in
      Printf.printf "phase totals (trace vs engine):\n";
      List.iter
        (fun (name, st) ->
          let phase = "protocol/" ^ name in
          let traced = phase_sends phase in
          let engine = Distsim.Engine.total_sent st in
          let ok = traced = engine || dropped_l > 0 in
          if not ok then audit_ok := false;
          Printf.printf "  %-20s %9d traced  %9d engine  %8.2f/node%s\n" phase
            traced engine
            (float_of_int engine /. float_of_int size_l)
            (if traced = engine then "" else "  MISMATCH"))
        stats_l;
      (* O(n) clustering claim: log-log slope of clustering messages vs n *)
      let fit_points =
        List.map
          (fun (size, _, evs, _) ->
            let cl =
              List.fold_left
                (fun acc (row : Obs.Trace.audit_row) ->
                  if row.Obs.Trace.a_phase = "protocol/cluster" then
                    acc + row.Obs.Trace.a_sends
                  else acc)
                0
                (Obs.Trace.message_audit evs)
            in
            (size, cl))
          runs
      in
      Printf.printf "clustering messages vs n:";
      List.iter (fun (size, cl) -> Printf.printf "  %d:%d" size cl) fit_points;
      print_newline ();
      let slope =
        Obs.Trace.fit_loglog_slope
          (List.map
             (fun (size, cl) -> (float_of_int size, float_of_int cl))
             fit_points)
      in
      let slope_ok = slope >= 0.75 && slope <= 1.25 in
      Printf.printf "O(n) clustering check: log-log slope %.3f -> %s\n" slope
        (if slope_ok then "OK (linear)"
         else "FAIL (expected within [0.75, 1.25])");
      (* span profile of the largest run *)
      Printf.printf "span profile (n=%d):\n" size_l;
      Printf.printf "  %-30s %7s %11s %11s\n" "path" "calls" "total(s)"
        "self(s)";
      List.iter
        (fun (row : Obs.Trace.profile_row) ->
          Printf.printf "  %-30s %7d %11.6f %11.6f\n" row.Obs.Trace.p_path
            row.Obs.Trace.p_calls row.Obs.Trace.p_total row.Obs.Trace.p_self)
        (Obs.Trace.profile evs_l);
      (* happens-before analysis: per-phase causal audit, violation
         diagnostics, and the clustering depth gate over the sweep *)
      let causal_ok = ref true in
      let flows_l = ref [] in
      if critical_path then begin
        let reports =
          List.map
            (fun (size, _, evs, dropped) ->
              (size, Obs.Causal.analyze evs, dropped))
            runs
        in
        let _, rep_l, _ = List.nth reports (List.length reports - 1) in
        flows_l := Obs.Causal.flows evs_l rep_l;
        Printf.printf "causal audit (n=%d):\n" size_l;
        Printf.printf "  %-20s %7s %6s %7s %10s %12s\n" "phase" "events"
          "depth" "rounds" "max-width" "top-node";
        List.iter
          (fun (ph : Obs.Causal.phase_report) ->
            let wmax =
              List.fold_left
                (fun acc (_, w) -> max acc w)
                0 ph.Obs.Causal.ph_width
            in
            let top =
              match ph.Obs.Causal.ph_attribution with
              | [] -> "-"
              | (nd, c) :: _ -> Printf.sprintf "n%d (%d)" nd c
            in
            Printf.printf "  %-20s %7d %6d %7d %10d %12s\n"
              ph.Obs.Causal.ph_phase ph.Obs.Causal.ph_events
              ph.Obs.Causal.ph_depth ph.Obs.Causal.ph_rounds wmax top)
          rep_l.Obs.Causal.r_phases;
        Printf.printf
          "  end-to-end critical path: %d message hops, %d rounds, %g \
           simulated time\n"
          rep_l.Obs.Causal.r_depth rep_l.Obs.Causal.r_rounds
          rep_l.Obs.Causal.r_span_time;
        (* causality violations are a hard failure, except on runs whose
           ring overflowed (dropped sends legitimately orphan delivers) *)
        List.iter
          (fun (size, rep, dropped) ->
            if dropped = 0 then
              List.iter
                (fun v ->
                  causal_ok := false;
                  Format.printf "  causality violation (n=%d): %a@." size
                    Obs.Causal.pp_violation v)
                rep.Obs.Causal.r_violations)
          reports;
        (* O(1) rounds claim: clustering's causal depth must stay
           bounded across the sweep — flat range, or a log-log slope
           well below linear *)
        let cluster_depths =
          List.map
            (fun (size, rep, _) ->
              let d =
                List.fold_left
                  (fun acc (ph : Obs.Causal.phase_report) ->
                    if ph.Obs.Causal.ph_phase = "protocol/cluster" then
                      ph.Obs.Causal.ph_depth
                    else acc)
                  0 rep.Obs.Causal.r_phases
              in
              (size, d))
            reports
        in
        Printf.printf "clustering causal depth vs n:";
        List.iter (fun (s, d) -> Printf.printf "  %d:%d" s d) cluster_depths;
        print_newline ();
        let depths = List.map snd cluster_depths in
        let dmin = List.fold_left min max_int depths in
        let dmax = List.fold_left max 0 depths in
        let dslope =
          Obs.Trace.fit_loglog_slope
            (List.map
               (fun (s, d) -> (float_of_int s, float_of_int (max 1 d)))
               cluster_depths)
        in
        let depth_ok = dmax - dmin <= 2 || dslope <= 0.45 in
        if not depth_ok then causal_ok := false;
        Printf.printf
          "O(1) clustering depth check: range [%d, %d], log-log slope %.3f \
           -> %s\n"
          dmin dmax dslope
          (if depth_ok then "OK (bounded)"
           else "FAIL (depth grows with n)")
      end;
      let dot_code =
        match dot with
        | None -> 0
        | Some file ->
          let size_s, _, evs_s, _ = List.hd runs in
          let buf = Buffer.create 65536 in
          let fmt = Format.formatter_of_buffer buf in
          Obs.Causal.write_dot fmt evs_s;
          Format.pp_print_flush fmt ();
          let text = Buffer.contents buf in
          let count c =
            String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc)
              0 text
          in
          if
            String.length text > 7
            && String.sub text 0 7 = "digraph"
            && count '{' > 0
            && count '{' = count '}'
          then begin
            let oc = open_out file in
            output_string oc text;
            close_out oc;
            Printf.eprintf "trace: wrote happens-before DAG (n=%d) to %s\n"
              size_s file;
            0
          end
          else begin
            Printf.eprintf "trace: %s: DOT output failed structural check\n"
              file;
            1
          end
      in
      let out_code =
        match out with
        | None -> 0
        | Some file -> export_trace ~flows:!flows_l file evs_l
      in
      (match folded with
      | None -> ()
      | Some file ->
        let oc = open_out file in
        let fmt = Format.formatter_of_out_channel oc in
        Obs.Trace.write_folded fmt evs_l;
        Format.pp_print_flush fmt ();
        close_out oc;
        Printf.eprintf "trace: wrote folded stacks to %s\n" file);
      if (not slope_ok) || (not !audit_ok) || not !causal_ok then 1
      else if out_code <> 0 then out_code
      else dot_code
    end
  in
  let doc =
    "replay the distributed construction under the event tracer: audit \
     per-phase per-kind message complexity against the engine's counters, \
     fit the messages-vs-n slope to check the paper's O(n) clustering \
     claim, reconstruct the happens-before DAG for critical-path and \
     causal-depth gates, and export Chrome/folded/DOT artifacts"
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ sizes_arg $ out $ folded
      $ critical_path_arg $ dot_arg $ deep_fixture_arg)

(* ---------------- monitor ---------------- *)

let monitor_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 50
      & info [ "rounds" ] ~docv:"K" ~doc:"Mobility rounds to simulate.")
  in
  let min_speed =
    Arg.(
      value & opt float 1.
      & info [ "min-speed" ] ~docv:"V" ~doc:"Minimum waypoint speed per round.")
  in
  let max_speed =
    Arg.(
      value & opt float 3.
      & info [ "max-speed" ] ~docv:"V" ~doc:"Maximum waypoint speed per round.")
  in
  let policy =
    let doc =
      "Maintenance policy after each round: $(b,refresh) (incumbent \
       dominators keep priority) or $(b,rebuild) (from scratch)."
    in
    Arg.(
      value
      & opt (enum [ ("refresh", `Refresh); ("rebuild", `Rebuild) ]) `Refresh
      & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let refresh_when =
    let doc =
      "When to run maintenance: $(b,every) round, or only when a backbone \
       link $(b,broke).  With $(b,broke), rounds between repairs check the \
       stale backbone against the moved nodes — expect planarity and \
       stretch alerts; that is the point."
    in
    Arg.(
      value
      & opt (enum [ ("every", `Every); ("broke", `Broke) ]) `Every
      & info [ "refresh-when" ] ~docv:"WHEN" ~doc)
  in
  let stretch_sources =
    Arg.(
      value & opt int 8
      & info [ "stretch-sources" ] ~docv:"K"
          ~doc:"Sampled sources per round for the stretch probes.")
  in
  let traffic =
    Arg.(
      value & opt int 4
      & info [ "traffic" ] ~docv:"K"
          ~doc:
            "Greedy-route $(docv) random packets per round through the \
             packet simulator, so the per-round message and delivery-ratio \
             probes observe live engine traffic.  0 disables.")
  in
  let limit name probe =
    Arg.(
      value & opt (some float) None
      & info [ name ] ~docv:"X"
          ~doc:(Printf.sprintf "Override the $(b,%s) alert limit." probe))
  in
  let len_limit = limit "len-limit" "len_stretch_max" in
  let hop_limit = limit "hop-limit" "hop_stretch_max" in
  let degree_limit = limit "degree-limit" "deg_max" in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Export the telemetry time-series as JSON-lines to $(docv) (one \
             object per probe per round); the file is re-parsed and the \
             command fails on a round-trip mismatch.")
  in
  let csv_out =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Export the telemetry time-series as a CSV matrix to $(docv).")
  in
  (* write + re-parse, like export_trace: the exporter validates its
     own output *)
  let export_jsonl file tel =
    let oc = open_out file in
    let fmt = Format.formatter_of_out_channel oc in
    Obs.Telemetry.write_jsonl fmt tel;
    Format.pp_print_flush fmt ();
    close_out oc;
    let ic = open_in_bin file in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let written = List.length (Obs.Telemetry.rounds tel) in
    match Obs.Telemetry.read_jsonl contents with
    | rows when List.length rows = written ->
      Printf.eprintf "monitor: wrote %d rounds to %s\n" written file;
      0
    | rows ->
      Printf.eprintf
        "monitor: %s round-trip mismatch (%d rounds written, %d parsed)\n"
        file written (List.length rows);
      1
    | exception Failure msg ->
      Printf.eprintf "monitor: %s failed to validate: %s\n" file msg;
      1
  in
  let run seed n side radius input rounds min_speed max_speed policy
      refresh_when stretch_sources traffic len_limit hop_limit degree_limit
      out csv_out listen jobs stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    let mon_ref = ref None in
    (* /healthz reflects the monitor's live probe status *)
    let health () =
      match !mon_ref with
      | None -> (true, "starting")
      | Some mon ->
        if Core.Monitor.healthy mon then (true, "ok")
        else
          ( false,
            Printf.sprintf "%d violations"
              (List.length (Core.Monitor.violations mon)) )
    in
    with_listen ~health listen @@ fun _lport ->
    let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
    let was = Obs.enabled () in
    Obs.set_enabled true;
    Obs.set_gc_sampling true;
    let bb =
      ref (Core.Backbone.run { Config.default with Config.radius; jobs } pts)
    in
    let model =
      Wireless.Mobility.random_waypoint
        (Wireless.Rand.create (Int64.add seed 1L))
        ~side ~min_speed ~max_speed ~init:pts
    in
    let th = Core.Monitor.default_thresholds in
    let th =
      {
        th with
        Core.Monitor.max_len_stretch =
          Option.value len_limit ~default:th.Core.Monitor.max_len_stretch;
        max_hop_stretch =
          Option.value hop_limit ~default:th.Core.Monitor.max_hop_stretch;
        max_degree =
          Option.value degree_limit ~default:th.Core.Monitor.max_degree;
      }
    in
    let mon =
      Core.Monitor.create ~thresholds:th ~stretch_sources ~seed ~jobs ()
    in
    mon_ref := Some mon;
    let ring_dumped = ref false in
    let traffic_rng = Wireless.Rand.create (Int64.add seed 2L) in
    let tel = Core.Monitor.telemetry mon in
    let lastv name =
      match Obs.Telemetry.last tel name with Some v -> v | None -> nan
    in
    Printf.printf
      "monitor: n=%d radius=%g rounds=%d policy=%s seed=%Ld\n" n radius rounds
      (match policy with `Refresh -> "refresh" | `Rebuild -> "rebuild")
      seed;
    Printf.printf "%5s %6s %6s %5s %5s %5s %4s %6s %6s %8s  %s\n" "round"
      "broken" "roleΔ" "cross" "xcomp" "gaps" "deg" "len" "hop" "msgs"
      "status";
    for r = 1 to rounds do
      Wireless.Mobility.step model;
      let positions = Array.copy (Wireless.Mobility.positions model) in
      let broken = Core.Maintenance.needs_refresh !bb positions in
      let maintained =
        if refresh_when = `Every || broken > 0 then begin
          let next, st =
            match policy with
            | `Refresh -> Core.Maintenance.refresh !bb positions
            | `Rebuild -> Core.Maintenance.rebuild !bb positions
          in
          bb := next;
          Some st
        end
        else None
      in
      let traffic_extra =
        if traffic <= 0 || n < 2 then []
        else begin
          let delivered, pairs, _ =
            Core.Packetsim.many !bb.Core.Backbone.udg
              !bb.Core.Backbone.points ~pairs:traffic traffic_rng
              ~router:`Greedy
          in
          [ ("delivery_ratio", float_of_int delivered /. float_of_int pairs) ]
        end
      in
      let extra =
        ("links_broken", float_of_int broken)
        ::
        (match maintained with
        | Some st ->
          [
            ("role_changes", float_of_int st.Core.Maintenance.role_changes);
            ("edge_changes", float_of_int st.Core.Maintenance.edge_changes);
          ]
        | None -> [])
        @ traffic_extra
      in
      let vs = Core.Monitor.observe mon ~round:r ~extra !bb in
      (* the flight recorder is always on: dump it once, at the first
         violating round, so the events leading up to the violation
         are on record even without --listen *)
      if vs <> [] && not !ring_dumped then begin
        ring_dumped := true;
        Printf.eprintf "monitor: flight recorder at first violation:\n";
        Obs.Recorder.dump Format.err_formatter ();
        Format.pp_print_flush Format.err_formatter ()
      end;
      let status =
        match vs with
        | [] -> "ok"
        | vs ->
          "VIOLATION("
          ^ String.concat ","
              (List.map (fun v -> v.Core.Monitor.v_probe) vs)
          ^ ")"
      in
      Printf.printf "%5d %6d %6.0f %5.0f %5.0f %5.0f %4.0f %6.2f %6.2f %8.0f  %s\n"
        r broken (lastv "role_changes") (lastv "crossings")
        (lastv "extra_components") (lastv "domination_gaps") (lastv "deg_max")
        (lastv "len_stretch_max") (lastv "hop_stretch_max") (lastv "messages")
        status
    done;
    Obs.set_gc_sampling false;
    Printf.printf "probe summary (%d rounds):\n" rounds;
    List.iter
      (fun name ->
        let series = List.map snd (Obs.Telemetry.series tel name) in
        match Obs.Telemetry.sketch tel name with
        | None -> ()
        | Some sk ->
          Printf.printf "  %-18s last=%10.2f p50=%10.2f p90=%10.2f max=%10.2f  %s\n"
            name (lastv name)
            (Obs.Sketch.quantile sk 0.5)
            (Obs.Sketch.quantile sk 0.9)
            (Obs.Sketch.max_value sk)
            (Obs.Telemetry.sparkline series))
      (Obs.Telemetry.names tel);
    List.iter
      (fun (v : Core.Monitor.violation) ->
        Printf.printf "VIOLATION round %d: %s = %g exceeds limit %g%s\n"
          v.Core.Monitor.v_round v.Core.Monitor.v_probe v.Core.Monitor.v_value
          v.Core.Monitor.v_limit
          (if v.Core.Monitor.v_node >= 0 then
             Printf.sprintf " (node %d)" v.Core.Monitor.v_node
           else ""))
      (Core.Monitor.violations mon);
    let out_code =
      match out with None -> 0 | Some file -> export_jsonl file tel
    in
    (match csv_out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      let fmt = Format.formatter_of_out_channel oc in
      Obs.Telemetry.write_csv fmt tel;
      Format.pp_print_flush fmt ();
      close_out oc;
      Printf.eprintf "monitor: wrote CSV matrix to %s\n" file);
    Obs.set_enabled was;
    if not (Core.Monitor.healthy mon) then 1 else out_code
  in
  let doc =
    "run a random-waypoint mobility scenario under the invariant health \
     monitor: maintain the backbone each round, re-check the paper's \
     guarantees (planarity, connectivity, domination, the ICDS degree \
     bound, sampled length/hop stretch), print a per-round health table \
     with sparkline summaries, and exit non-zero on any violation"
  in
  Cmd.v
    (Cmd.info "monitor" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ input $ rounds_arg
      $ min_speed $ max_speed $ policy $ refresh_when $ stretch_sources
      $ traffic $ len_limit $ hop_limit $ degree_limit $ out $ csv_out
      $ listen_arg $ jobs $ stats $ trace_file)

(* ---------------- serve ---------------- *)

let serve_cmd =
  let queries =
    Arg.(
      value & opt int 20_000
      & info [ "queries" ] ~docv:"Q" ~doc:"Queries to serve.")
  in
  let mix_arg =
    let doc =
      "Query mix as comma-separated scheme weights, e.g. \
       $(b,greedy=0.5,gfg=0.3,compass=0.15,stretch=0.05).  Omitted schemes \
       weigh 0; $(b,stretch) probes route with GFG and report walked length \
       over the UDG shortest path."
    in
    Arg.(
      value
      & opt string (Serve.Workload.mix_to_string Serve.Workload.default_mix)
      & info [ "mix" ] ~docv:"MIX" ~doc)
  in
  let skew_arg =
    let doc =
      "Source/destination distribution: $(b,uniform), $(b,zipf:S) (exponent \
       S, low ids hot), or $(b,hotspot:FRAC/K) (fraction FRAC of endpoint \
       draws land on K random hot nodes)."
    in
    Arg.(value & opt string "uniform" & info [ "skew" ] ~docv:"SKEW" ~doc)
  in
  let rate =
    let doc =
      "Open-loop arrival rate in queries per second: query $(i,i) arrives at \
       $(i,i)/$(docv) and its latency includes queueing delay.  Default: \
       closed loop (latency is pure service time)."
    in
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"QPS" ~doc)
  in
  let batch_arg =
    let doc =
      "Queries per epoch-pinned batch; the epoch can only roll at batch \
       boundaries, so per-query results stay independent of --jobs."
    in
    Arg.(value & opt int 4096 & info [ "batch" ] ~docv:"B" ~doc)
  in
  let churn =
    let doc =
      "Every $(docv) batches, jitter the node positions and publish a \
       rebuilt snapshot as a new epoch — queries in flight keep their \
       pinned epoch.  0 disables churn."
    in
    Arg.(value & opt int 0 & info [ "churn" ] ~docv:"K" ~doc)
  in
  let churn_jitter =
    Arg.(
      value & opt float 2.
      & info [ "churn-jitter" ] ~docv:"D"
          ~doc:"Per-axis uniform move amplitude for --churn.")
  in
  let no_latency =
    let doc =
      "Skip the two per-query clock reads: pure throughput/allocation mode \
       (the latency table is omitted)."
    in
    Arg.(value & flag & info [ "no-latency" ] ~doc)
  in
  let out =
    let doc =
      "Write the per-query result log as JSON-lines to $(docv) (op, \
       endpoints, epoch, hops, stretch — deterministic fields only); the \
       file is re-parsed and checked against the in-memory results before \
       exit."
    in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  (* write + re-parse + compare, in the export_trace/export_jsonl
     tradition: the exporter validates its own output *)
  let export_serve file (w : Serve.Workload.t) (r : Serve.Engine.results) =
    let oc = open_out file in
    let fmt = Format.formatter_of_out_channel oc in
    Serve.Engine.write_jsonl fmt w r;
    Format.pp_print_flush fmt ();
    close_out oc;
    let ic = open_in_bin file in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Serve.Engine.read_jsonl contents with
    | rows ->
      let ok =
        List.length rows = r.Serve.Engine.count
        && List.for_all
             (fun (row : Serve.Engine.row) ->
               row.Serve.Engine.r_q >= 0
               && row.r_q < r.count
               && row.r_hops = r.hops.(row.r_q)
               && row.r_epoch = r.epoch.(row.r_q)
               && row.r_src = w.Serve.Workload.src.(row.r_q)
               && row.r_dst = w.Serve.Workload.dst.(row.r_q))
             rows
      in
      if ok then begin
        Printf.eprintf "serve: wrote %d query results to %s\n" r.count file;
        0
      end
      else begin
        Printf.eprintf
          "serve: %s round-trip mismatch against the in-memory results\n" file;
        1
      end
    | exception Failure msg ->
      Printf.eprintf "serve: %s failed to validate: %s\n" file msg;
      1
  in
  let run seed n side radius input jobs partition queries mix skew rate batch
      churn churn_jitter no_latency out listen stats_fmt trace =
    with_stats stats_fmt @@ fun () ->
    with_trace trace @@ fun () ->
    match (Serve.Workload.mix_of_string mix, Serve.Workload.skew_of_string skew)
    with
    | Error e, _ | _, Error e ->
      Printf.eprintf "serve: %s\n" e;
      2
    | Ok mix, Ok skew ->
      let store_ref = ref None in
      (* /epoch reports the store's currently published epoch id *)
      let epoch_route () =
        match !store_ref with
        | None -> "-1\n"
        | Some store ->
          Printf.sprintf "%d\n" (Serve.Store.id (Serve.Store.pin store))
      in
      with_listen ~routes:[ ("/epoch", epoch_route) ] listen @@ fun lport ->
      let pts = deployment ~seed ~n ~side ~radius ~connected:true ~input in
      let n = Array.length pts in
      let cfg = { Config.default with Config.radius; jobs; partition } in
      let store = Serve.Store.create (Core.Backbone.snapshot cfg pts) in
      store_ref := Some store;
      let w =
        Serve.Workload.generate ~seed ~n ~count:queries ~mix ~skew ?rate ()
      in
      let churn_rng = Wireless.Rand.create (Int64.add seed 11L) in
      let positions = ref pts in
      let nb = if queries = 0 then 0 else (queries + batch - 1) / batch in
      let midrun_scraped = ref false in
      let midrun_err = ref None in
      let on_batch b =
        (* scrape ourselves once, mid-run, from the batch boundary:
           proves a live scraper sees parseable exposition while
           queries are in flight (the fan-out has not started yet, so
           this perturbs scheduling, never results) *)
        (match lport with
        | Some port when (not !midrun_scraped) && b = nb / 2 ->
          midrun_scraped := true;
          (match Obs.Export.get ~port "/metrics" with
          | exception e -> midrun_err := Some (Printexc.to_string e)
          | _, body -> (
            match Obs.Export.parse_exposition body with
            | exception Failure msg -> midrun_err := Some msg
            | samples ->
              Printf.eprintf
                "listen: mid-run scrape at batch %d parsed %d samples\n%!" b
                (List.length samples)))
        | _ -> ());
        if churn > 0 && b > 0 && b mod churn = 0 then begin
          let moved =
            Array.map
              (fun (p : Geometry.Point.t) ->
                let jit () =
                  Wireless.Rand.float churn_rng (2. *. churn_jitter)
                  -. churn_jitter
                in
                Geometry.Point.make
                  (Float.max 0. (Float.min side (p.x +. jit ())))
                  (Float.max 0. (Float.min side (p.y +. jit ()))))
              !positions
          in
          positions := moved;
          ignore (Serve.Store.publish store (Core.Backbone.snapshot cfg moved))
        end
      in
      let r =
        Serve.Engine.run ~jobs ~batch ~latency:(not no_latency) ~on_batch
          ~store w
      in
      let s = Serve.Engine.summarize r in
      let epochs = Serve.Store.id (Serve.Store.pin store) + 1 in
      Printf.printf "serve: n=%d queries=%d jobs=%d batch=%d epochs=%d%s\n" n
        queries jobs batch epochs
        (match rate with
        | Some q -> Printf.sprintf " rate=%g/s (open loop)"
                      q
        | None -> "");
      Printf.printf "throughput: %10.0f queries/s   (%.3f s elapsed)\n"
        s.Serve.Engine.s_qps r.Serve.Engine.elapsed_s;
      Printf.printf "delivered:  %7d/%d (%.2f%%)\n" s.Serve.Engine.s_delivered
        queries
        (if queries = 0 then 100.
         else
           100.
           *. float_of_int s.Serve.Engine.s_delivered
           /. float_of_int queries);
      Printf.printf "hops:       p50 %.0f  p99 %.0f\n" s.Serve.Engine.s_hop_p50
        s.Serve.Engine.s_hop_p99;
      if not (Float.is_nan s.Serve.Engine.s_stretch_p50) then
        Printf.printf "stretch:    p50 %.3f  max %.3f  (sampled probes)\n"
          s.Serve.Engine.s_stretch_p50 s.Serve.Engine.s_stretch_max;
      if not no_latency then
        Printf.printf
          "latency:    p50 %.1f us  p99 %.1f us  p999 %.1f us\n"
          s.Serve.Engine.s_lat_p50_us s.Serve.Engine.s_lat_p99_us
          s.Serve.Engine.s_lat_p999_us;
      Printf.printf "alloc:      %.2f minor words/query (caller domain)\n"
        s.Serve.Engine.s_minor_per_query;
      let tel = Obs.Telemetry.create () in
      Serve.Engine.to_telemetry tel r;
      List.iter
        (fun name ->
          let series = List.map snd (Obs.Telemetry.series tel name) in
          Printf.printf "  %-16s %s\n" name (Obs.Telemetry.sparkline series))
        (Obs.Telemetry.names tel);
      let code =
        match out with None -> 0 | Some file -> export_serve file w r
      in
      (match !midrun_err with
      | None -> code
      | Some msg ->
        Printf.eprintf "serve: mid-run scrape failed: %s\n" msg;
        1)
  in
  let doc =
    "serve route queries (greedy / GFG / compass / sampled stretch) from \
     epoch-pinned backbone snapshots across worker domains, and report \
     throughput, tail latency and per-batch sparklines"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ seed $ nodes $ side $ radius $ input $ jobs $ partition
      $ queries $ mix_arg $ skew_arg $ rate $ batch_arg $ churn $ churn_jitter
      $ no_latency $ out $ listen_arg $ stats $ trace_file)

(* ---------------- main ---------------- *)

let () =
  let doc = "geometric spanners for wireless ad hoc networks" in
  let info = Cmd.info "spanner" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd; build_cmd; measure_cmd; route_cmd; protocol_cmd;
            dump_cmd; broadcast_cmd; lifetime_cmd; experiment_cmd; trace_cmd;
            monitor_cmd; serve_cmd;
          ]))
