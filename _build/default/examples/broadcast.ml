(* Broadcast: the cost of flooding vs backbone-based dissemination —
   Section I's motivation, measured.

     dune exec examples/broadcast.exe

   As density grows, blind flooding always costs n transmissions,
   while the backbone broadcast costs only the backbone size, which
   the paper proves is within a constant factor of the minimum
   dominating set and independent of density.  RNG neighbor-
   elimination relay sits between the two. *)

let () =
  Printf.printf "%5s %8s | %9s %9s %9s | %9s %9s %9s\n" "n" "UDG deg"
    "flood" "rng-relay" "backbone" "cover-f" "cover-r" "cover-b";
  List.iter
    (fun n ->
      let rng = Wireless.Rand.create (Int64.of_int (1000 + n)) in
      let pts, _ =
        Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius:60.
          ~max_attempts:1000
      in
      let udg = Wireless.Udg.build pts ~radius:60. in
      let cds = Core.Cds.of_udg udg in
      let f = Core.Broadcast.flood udg ~source:0 in
      let r = Core.Broadcast.rng_relay udg pts ~source:0 in
      let b = Core.Broadcast.backbone_broadcast udg cds ~source:0 in
      let deg = (Netgraph.Metrics.degree_stats udg).Netgraph.Metrics.deg_avg in
      Printf.printf "%5d %8.1f | %9d %9d %9d | %9.2f %9.2f %9.2f\n" n deg
        f.Core.Broadcast.transmissions r.Core.Broadcast.transmissions
        b.Core.Broadcast.transmissions
        (Core.Broadcast.coverage f) (Core.Broadcast.coverage r)
        (Core.Broadcast.coverage b))
    [ 50; 100; 150; 200; 300; 400 ];
  Printf.printf
    "\nflooding scales with n; the backbone broadcast scales with the\n\
     dominating set (roughly the area over the coverage disk area),\n\
     which stops growing once the region is saturated.\n"
