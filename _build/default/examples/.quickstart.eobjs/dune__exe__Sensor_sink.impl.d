examples/sensor_sink.ml: Array Core Fun Geometry Hashtbl List Netgraph Option Printf Wireless
