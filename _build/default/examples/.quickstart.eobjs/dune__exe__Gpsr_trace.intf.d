examples/gpsr_trace.mli:
