examples/sensor_sink.mli:
