examples/gpsr_trace.ml: Array Core Geometry Int64 List Netgraph Printf Wireless
