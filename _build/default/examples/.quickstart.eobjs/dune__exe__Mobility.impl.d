examples/mobility.ml: Array Core Distsim Netgraph Printf Wireless
