examples/quickstart.ml: Array Core List Netgraph Printf String Wireless
