examples/topologies.ml: Array Core Filename Geometry List Netgraph Printf String Sys Viz Wireless
