examples/routing_demo.mli:
