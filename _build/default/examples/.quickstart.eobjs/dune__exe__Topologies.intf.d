examples/topologies.mli:
