examples/broadcast.ml: Core Int64 List Netgraph Printf Wireless
