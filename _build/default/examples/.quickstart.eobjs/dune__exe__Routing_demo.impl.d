examples/routing_demo.ml: Array Core List Netgraph Printf Wireless
