examples/quickstart.mli:
