examples/broadcast.mli:
