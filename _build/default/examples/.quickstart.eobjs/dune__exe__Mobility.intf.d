examples/mobility.mli:
