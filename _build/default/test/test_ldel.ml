(* Localized Delaunay (Algorithms 2-3): local triangle computation,
   acceptance, planarization. *)

module G = Netgraph.Graph
module P = Geometry.Point

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let random_instance seed n side radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side ~radius ~max_attempts:2000
  in
  (pts, Wireless.Udg.build pts ~radius)

let test_local_triangles_triangle () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 0.5 0.8 |] in
  let g = Wireless.Udg.build pts ~radius:1.5 in
  check "single local triangle" true
    (Core.Ldel.local_delaunay_triangles g pts 0 = [ (0, 1, 2) ])

let test_local_triangles_from_neighborhood_equivalence () =
  let pts, udg = random_instance 100L 60 200. 50. in
  for u = 0 to 59 do
    let via_graph = Core.Ldel.local_delaunay_triangles udg pts u in
    let via_view =
      Core.Ldel.local_triangles_of_neighborhood ~me:u ~me_pos:pts.(u)
        ~nbrs:(List.map (fun v -> (v, pts.(v))) (G.neighbors udg u))
    in
    check "same triangles" true (via_graph = via_view)
  done

let test_triangle_fits () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 0. 1. |] in
  check "fits" true (Core.Ldel.triangle_fits pts ~radius:1.5 (0, 1, 2));
  check "hypotenuse too long" false
    (Core.Ldel.triangle_fits pts ~radius:1.2 (0, 1, 2))

let test_triangles_intersect_cases () =
  let pts =
    [|
      P.make 0. 0.; (* 0 *)
      P.make 4. 0.; (* 1 *)
      P.make 2. 3.; (* 2 *)
      P.make 2. 1.; (* 3: inside triangle 0-1-2 *)
      P.make 6. 0.; (* 4 *)
      P.make 5. 2.; (* 5 *)
      P.make 0. 5.; (* 6 *)
      P.make 1. 4.; (* 7 *)
      P.make (-2.) 4.; (* 8 *)
    |]
  in
  let ti = Core.Ldel.triangles_intersect pts in
  (* containment without edge crossings: tiny triangle inside big *)
  let tiny = (3, 3, 3) in
  ignore tiny;
  check "vertex inside" true (ti (0, 1, 2) (3, 4, 5));
  (* sharing an edge, disjoint interiors *)
  check "shared edge ok" false (ti (0, 1, 2) (1, 2, 5));
  (* sharing a vertex only *)
  check "shared vertex ok" false (ti (0, 1, 2) (2, 6, 7));
  (* disjoint *)
  check "disjoint" false (ti (0, 1, 3) (6, 7, 8))

let test_circumcircle_contains () =
  let pts = [| P.make 0. 0.; P.make 2. 0.; P.make 0. 2.; P.make 1. 1.; P.make 9. 9. |] in
  check "inside" true (Core.Ldel.circumcircle_contains pts (0, 1, 2) 3);
  check "outside" false (Core.Ldel.circumcircle_contains pts (0, 1, 2) 4);
  check "corner excluded" false (Core.Ldel.circumcircle_contains pts (0, 1, 2) 0)

(* The key theorems from Li et al. that the paper relies on, checked
   empirically on random instances: *)

let test_ldel_contains_gabriel () =
  let pts, udg = random_instance 101L 80 200. 50. in
  let l = Core.Ldel.build udg pts ~radius:50. in
  let gg = Wireless.Proximity.gabriel_graph udg pts in
  check "GG ⊆ LDel1" true (G.is_subgraph gg l.Core.Ldel.ldel1);
  check "GG ⊆ PLDel" true (G.is_subgraph gg l.Core.Ldel.planar)

let test_ldel_contains_udel () =
  (* unit Delaunay triangles are 1-localized Delaunay triangles, so
     UDel ⊆ LDel1 *)
  let pts, udg = random_instance 102L 80 200. 50. in
  let l = Core.Ldel.build udg pts ~radius:50. in
  let udel = Wireless.Proximity.udel pts ~radius:50. in
  check "UDel ⊆ LDel1" true (G.is_subgraph udel l.Core.Ldel.ldel1)

let test_pldel_planar_and_connected () =
  for seed = 110 to 119 do
    let pts, udg = random_instance (Int64.of_int seed) 90 200. 50. in
    let l = Core.Ldel.build udg pts ~radius:50. in
    check "planar" true (Netgraph.Planarity.is_planar l.Core.Ldel.planar pts);
    check "connected" true
      (Netgraph.Components.is_connected l.Core.Ldel.planar);
    check "planar ⊆ ldel1" true
      (G.is_subgraph l.Core.Ldel.planar l.Core.Ldel.ldel1);
    check "ldel1 within UDG distance" true
      (G.fold_edges l.Core.Ldel.ldel1
         (fun acc u v -> acc && P.dist pts.(u) pts.(v) <= 50.)
         true)
  done

let test_ldel1_thickness_two_edge_bound () =
  (* LDel1 has thickness 2, hence at most 2(3n - 6) edges *)
  let pts, udg = random_instance 120L 100 200. 60. in
  let l = Core.Ldel.build udg pts ~radius:60. in
  let n = Array.length pts in
  check "edge bound" true
    (G.edge_count l.Core.Ldel.ldel1 <= 2 * ((3 * n) - 6))

let test_kept_subset_accepted () =
  let pts, udg = random_instance 121L 80 200. 50. in
  let l = Core.Ldel.build udg pts ~radius:50. in
  let module TS = Set.Make (struct
    type t = int * int * int

    let compare = compare
  end) in
  let acc = TS.of_list l.Core.Ldel.triangles in
  check "kept ⊆ accepted" true
    (List.for_all (fun t -> TS.mem t acc) l.Core.Ldel.kept_triangles)

let test_ldel_on_icds () =
  (* the pipeline case: LDel over the induced backbone stays planar,
     connected on backbone nodes, and only touches backbone nodes *)
  for seed = 130 to 134 do
    let pts, udg = random_instance (Int64.of_int seed) 90 200. 50. in
    let cds = Core.Cds.of_udg udg in
    let l = Core.Ldel.build cds.Core.Cds.icds pts ~radius:50. in
    check "planar" true (Netgraph.Planarity.is_planar l.Core.Ldel.planar pts);
    check "backbone connected" true
      (Netgraph.Components.connected_within l.Core.Ldel.planar
         (Core.Cds.backbone_nodes cds));
    G.iter_edges l.Core.Ldel.planar (fun u v ->
        check "backbone only" true
          (cds.Core.Cds.backbone.(u) && cds.Core.Cds.backbone.(v)))
  done

let test_degenerate_inputs () =
  (* two nodes: single Gabriel edge, no triangles *)
  let pts = [| P.make 0. 0.; P.make 1. 0. |] in
  let udg = Wireless.Udg.build pts ~radius:2. in
  let l = Core.Ldel.build udg pts ~radius:2. in
  checki "no triangles" 0 (List.length l.Core.Ldel.triangles);
  check "edge kept" true (G.has_edge l.Core.Ldel.planar 0 1);
  (* collinear nodes: consecutive edges are Gabriel, no triangles *)
  let pts = Array.init 4 (fun i -> P.make (float_of_int i) 0.) in
  let udg = Wireless.Udg.build pts ~radius:1.5 in
  let l = Core.Ldel.build udg pts ~radius:1.5 in
  checki "no triangles" 0 (List.length l.Core.Ldel.triangles);
  check "path kept" true
    (G.has_edge l.Core.Ldel.planar 0 1
    && G.has_edge l.Core.Ldel.planar 1 2
    && G.has_edge l.Core.Ldel.planar 2 3)

let test_dense_equals_udel_plus () =
  (* when the radius covers the whole deployment, every node sees
     everything: LDel1 = Del (all triangles survive) *)
  let rng = Wireless.Rand.create 140L in
  let pts =
    Array.init 20 (fun _ ->
        P.make (Wireless.Rand.float rng 10.) (Wireless.Rand.float rng 10.))
  in
  let radius = 100. in
  let udg = Wireless.Udg.build pts ~radius in
  let l = Core.Ldel.build udg pts ~radius in
  let del = Delaunay.Triangulation.triangulate pts in
  let del_edges = Delaunay.Triangulation.edges del in
  check "LDel1 = Del when everyone sees everyone" true
    (List.sort compare (G.edges l.Core.Ldel.ldel1) = del_edges);
  check "planarization removes nothing" true
    (List.length l.Core.Ldel.kept_triangles
    = List.length l.Core.Ldel.triangles)

let suites =
  [
    ( "core.ldel",
      [
        Alcotest.test_case "local triangles (triangle)" `Quick
          test_local_triangles_triangle;
        Alcotest.test_case "neighborhood view equivalence" `Quick
          test_local_triangles_from_neighborhood_equivalence;
        Alcotest.test_case "triangle fits" `Quick test_triangle_fits;
        Alcotest.test_case "intersection cases" `Quick
          test_triangles_intersect_cases;
        Alcotest.test_case "circumcircle contains" `Quick
          test_circumcircle_contains;
        Alcotest.test_case "GG ⊆ LDel" `Quick test_ldel_contains_gabriel;
        Alcotest.test_case "UDel ⊆ LDel1" `Quick test_ldel_contains_udel;
        Alcotest.test_case "PLDel planar + connected" `Quick
          test_pldel_planar_and_connected;
        Alcotest.test_case "thickness-2 edge bound" `Quick
          test_ldel1_thickness_two_edge_bound;
        Alcotest.test_case "kept ⊆ accepted" `Quick test_kept_subset_accepted;
        Alcotest.test_case "LDel on ICDS" `Quick test_ldel_on_icds;
        Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs;
        Alcotest.test_case "full visibility = Delaunay" `Quick
          test_dense_equals_udel_plus;
      ] );
  ]
