(* Broadcast protocols: coverage and transmission counts. *)

module G = Netgraph.Graph

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  (pts, Wireless.Udg.build pts ~radius)

let test_flood_full_coverage_and_cost () =
  let _, udg = instance 900L 80 50. in
  let o = Core.Broadcast.flood udg ~source:0 in
  Alcotest.(check (float 1e-9)) "full coverage" 1. (Core.Broadcast.coverage o);
  (* blind flooding: every node transmits exactly once *)
  checki "n transmissions" (G.node_count udg) o.Core.Broadcast.transmissions

let test_flood_latency_is_eccentricity () =
  let _, udg = instance 901L 60 40. in
  let o = Core.Broadcast.flood udg ~source:0 in
  let ecc = Netgraph.Traversal.eccentricity udg 0 in
  (* one round per hop ring, +1 to observe quiescence, +1 for the
     initial send round *)
  check "latency tracks eccentricity" true
    (o.Core.Broadcast.rounds >= ecc && o.Core.Broadcast.rounds <= ecc + 2)

let test_backbone_broadcast () =
  for seed = 910 to 914 do
    let _, udg = instance (Int64.of_int seed) 80 50. in
    let cds = Core.Cds.of_udg udg in
    let o = Core.Broadcast.backbone_broadcast udg cds ~source:5 in
    Alcotest.(check (float 1e-9)) "full coverage" 1. (Core.Broadcast.coverage o);
    let backbone_size = List.length (Core.Cds.backbone_nodes cds) in
    (* only backbone nodes plus possibly the source transmit *)
    check "cheaper than flooding" true
      (o.Core.Broadcast.transmissions <= backbone_size + 1);
    check "actually cheaper" true
      (o.Core.Broadcast.transmissions < G.node_count udg)
  done

let test_backbone_source_is_dominatee () =
  (* a dominatee source must still reach everyone (its dominator picks
     the packet up) *)
  let _, udg = instance 915L 70 50. in
  let cds = Core.Cds.of_udg udg in
  let dominatee =
    match
      Array.to_list cds.Core.Cds.roles
      |> List.mapi (fun i r -> (i, r))
      |> List.find_opt (fun (i, r) ->
             r = Core.Mis.Dominatee && not cds.Core.Cds.backbone.(i))
    with
    | Some (i, _) -> i
    | None -> 0
  in
  let o = Core.Broadcast.backbone_broadcast udg cds ~source:dominatee in
  Alcotest.(check (float 1e-9)) "full coverage" 1. (Core.Broadcast.coverage o)

let test_rng_relay () =
  for seed = 920 to 922 do
    let pts, udg = instance (Int64.of_int seed) 80 50. in
    let o = Core.Broadcast.rng_relay udg pts ~source:0 in
    Alcotest.(check (float 1e-9)) "full coverage" 1. (Core.Broadcast.coverage o);
    check "no worse than flooding" true
      (o.Core.Broadcast.transmissions <= G.node_count udg)
  done

let test_broadcast_disconnected () =
  (* two components: only the source's side is reached *)
  let udg = G.of_edges 4 [ (0, 1); (2, 3) ] in
  let o = Core.Broadcast.flood udg ~source:0 in
  check "own side reached" true
    (o.Core.Broadcast.reached.(0) && o.Core.Broadcast.reached.(1));
  check "other side not" true
    ((not o.Core.Broadcast.reached.(2)) && not o.Core.Broadcast.reached.(3));
  Alcotest.(check (float 1e-9)) "half coverage" 0.5 (Core.Broadcast.coverage o)

let test_broadcast_single_node () =
  let udg = G.create 1 in
  let o = Core.Broadcast.flood udg ~source:0 in
  check "source reached" true o.Core.Broadcast.reached.(0);
  checki "one send" 1 o.Core.Broadcast.transmissions

let suites =
  [
    ( "core.broadcast",
      [
        Alcotest.test_case "flood: coverage and cost" `Quick
          test_flood_full_coverage_and_cost;
        Alcotest.test_case "flood: latency" `Quick
          test_flood_latency_is_eccentricity;
        Alcotest.test_case "backbone broadcast" `Quick test_backbone_broadcast;
        Alcotest.test_case "backbone: dominatee source" `Quick
          test_backbone_source_is_dominatee;
        Alcotest.test_case "RNG relay" `Quick test_rng_relay;
        Alcotest.test_case "disconnected network" `Quick
          test_broadcast_disconnected;
        Alcotest.test_case "single node" `Quick test_broadcast_single_node;
      ] );
  ]
