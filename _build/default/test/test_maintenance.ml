(* Mobility models and backbone maintenance. *)

module P = Geometry.Point

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let inside side (p : P.t) = p.x >= 0. && p.x <= side && p.y >= 0. && p.y <= side

(* ---------------- mobility models ---------------- *)

let test_random_waypoint_bounds_and_speed () =
  let rng = Wireless.Rand.create 600L in
  let init = Wireless.Deploy.uniform rng ~n:50 ~side:100. in
  let m =
    Wireless.Mobility.random_waypoint rng ~side:100. ~min_speed:1.
      ~max_speed:3. ~init
  in
  let prev = ref (Array.copy (Wireless.Mobility.positions m)) in
  for _ = 1 to 50 do
    Wireless.Mobility.step m;
    let cur = Wireless.Mobility.positions m in
    Array.iteri
      (fun i p ->
        check "inside region" true (inside 100. p);
        (* per-step displacement never exceeds the max speed *)
        check "speed cap" true (P.dist !prev.(i) p <= 3. +. 1e-9))
      cur;
    prev := Array.copy cur
  done

let test_random_waypoint_moves () =
  let rng = Wireless.Rand.create 601L in
  let init = Wireless.Deploy.uniform rng ~n:20 ~side:100. in
  let snapshot = Array.copy init in
  let m =
    Wireless.Mobility.random_waypoint rng ~side:100. ~min_speed:2.
      ~max_speed:2. ~init
  in
  Wireless.Mobility.step_many m 10;
  let moved = ref 0 in
  Array.iteri
    (fun i p ->
      if P.dist snapshot.(i) p > 1. then incr moved)
    (Wireless.Mobility.positions m);
  check "most nodes moved" true (!moved > 15)

let test_random_waypoint_invalid () =
  let rng = Wireless.Rand.create 602L in
  let init = [| P.make 0. 0. |] in
  check "bad speeds" true
    (try
       ignore
         (Wireless.Mobility.random_waypoint rng ~side:10. ~min_speed:3.
            ~max_speed:1. ~init);
       false
     with Invalid_argument _ -> true)

let test_gauss_markov_bounds () =
  let rng = Wireless.Rand.create 603L in
  let init = Wireless.Deploy.uniform rng ~n:40 ~side:50. in
  let m =
    Wireless.Mobility.gauss_markov rng ~side:50. ~alpha:0.8 ~mean_speed:2.
      ~init
  in
  for _ = 1 to 100 do
    Wireless.Mobility.step m;
    Array.iter
      (fun p -> check "inside region" true (inside 50. p))
      (Wireless.Mobility.positions m)
  done

let test_gauss_markov_memory () =
  (* alpha = 1 with zero noise: straight-line motion; consecutive
     displacements are identical *)
  let rng = Wireless.Rand.create 604L in
  let init = [| P.make 25. 25. |] in
  let m =
    Wireless.Mobility.gauss_markov rng ~side:1000. ~alpha:1. ~mean_speed:1.
      ~init
  in
  let p0 = (Wireless.Mobility.positions m).(0) in
  Wireless.Mobility.step m;
  let p1 = (Wireless.Mobility.positions m).(0) in
  Wireless.Mobility.step m;
  let p2 = (Wireless.Mobility.positions m).(0) in
  let d1 = P.sub p1 p0 and d2 = P.sub p2 p1 in
  check "straight line" true (P.close ~eps:1e-9 d1 d2)

let test_partial_keeps_static_nodes () =
  let rng = Wireless.Rand.create 605L in
  let init = Wireless.Deploy.uniform rng ~n:60 ~side:100. in
  let snapshot = Array.copy init in
  let m =
    Wireless.Mobility.partial rng ~side:100. ~mobile:0.3 ~speed:2. ~init
  in
  Wireless.Mobility.step_many m 20;
  let static = ref 0 and moved = ref 0 in
  Array.iteri
    (fun i p ->
      if P.equal snapshot.(i) p then incr static
      else incr moved)
    (Wireless.Mobility.positions m);
  check "some static" true (!static > 20);
  check "some moved" true (!moved > 5)

(* ---------------- maintenance ---------------- *)

let build seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  Core.Backbone.build pts ~radius

let test_refresh_identity_when_static () =
  let bb = build 700L 80 50. in
  checki "no broken links" 0
    (Core.Maintenance.needs_refresh bb bb.Core.Backbone.points);
  let next, stats = Core.Maintenance.refresh bb bb.Core.Backbone.points in
  checki "no role changes" 0 stats.Core.Maintenance.role_changes;
  checki "no backbone changes" 0 stats.Core.Maintenance.backbone_changes;
  checki "no edge changes" 0 stats.Core.Maintenance.edge_changes;
  check "identical structure" true
    (Netgraph.Graph.equal next.Core.Backbone.ldel_icds'
       bb.Core.Backbone.ldel_icds')

let test_refresh_valid_after_motion () =
  let bb = build 701L 80 50. in
  let rng = Wireless.Rand.create 99L in
  let m =
    Wireless.Mobility.random_waypoint rng ~side:200. ~min_speed:3.
      ~max_speed:6. ~init:bb.Core.Backbone.points
  in
  let prev = ref bb in
  for _ = 1 to 5 do
    Wireless.Mobility.step_many m 3;
    let positions = Array.copy (Wireless.Mobility.positions m) in
    let udg = Wireless.Udg.build positions ~radius:50. in
    if Netgraph.Components.is_connected udg then begin
      let next, _ = Core.Maintenance.refresh !prev positions in
      let roles = next.Core.Backbone.cds.Core.Cds.roles in
      check "MIS independent" true (Core.Mis.is_independent udg roles);
      check "MIS dominating" true (Core.Mis.is_dominating udg roles);
      check "backbone connected" true
        (Netgraph.Components.connected_within next.Core.Backbone.cds.Core.Cds.cds
           (Core.Cds.backbone_nodes next.Core.Backbone.cds));
      check "planar" true
        (Netgraph.Planarity.is_planar next.Core.Backbone.ldel_icds_g positions);
      check "spans" true
        (Netgraph.Components.is_connected next.Core.Backbone.ldel_icds');
      prev := next
    end
  done

let test_refresh_more_stable_than_rebuild () =
  (* aggregate role churn across seeds and a longish mobility run:
     the stability-first policy must flap less than raw rebuilds.
     (Single short runs are noisy; the aggregate gap is large — about
     a third less churn.) *)
  let total_stable = ref 0 and total_naive = ref 0 in
  List.iter
    (fun seed ->
      let bb = build seed 100 50. in
      let run policy =
        let rng = Wireless.Rand.create 123L in
        let m =
          Wireless.Mobility.random_waypoint rng ~side:200. ~min_speed:2.
            ~max_speed:4. ~init:bb.Core.Backbone.points
        in
        let prev = ref bb in
        let churn = ref 0 in
        for _ = 1 to 15 do
          Wireless.Mobility.step_many m 2;
          let positions = Array.copy (Wireless.Mobility.positions m) in
          let udg = Wireless.Udg.build positions ~radius:50. in
          if Netgraph.Components.is_connected udg then begin
            let next, stats = policy !prev positions in
            churn := !churn + stats.Core.Maintenance.role_changes;
            prev := next
          end
        done;
        !churn
      in
      total_stable := !total_stable + run Core.Maintenance.refresh;
      total_naive := !total_naive + run Core.Maintenance.rebuild)
    [ 702L; 703L; 704L ];
  check
    (Printf.sprintf "refresh churn (%d) < rebuild churn (%d)" !total_stable
       !total_naive)
    true
    (!total_stable < !total_naive)

let test_needs_refresh_counts () =
  let bb = build 703L 60 50. in
  (* teleport one backbone node far away: every one of its structure
     links breaks *)
  let positions = Array.copy bb.Core.Backbone.points in
  let victim = List.hd (Core.Cds.backbone_nodes bb.Core.Backbone.cds) in
  positions.(victim) <- P.make 1e6 1e6;
  let broken = Core.Maintenance.needs_refresh bb positions in
  checki "all incident links broke"
    (Netgraph.Graph.degree bb.Core.Backbone.ldel_icds' victim)
    broken

let suites =
  [
    ( "wireless.mobility",
      [
        Alcotest.test_case "waypoint bounds and speed" `Quick
          test_random_waypoint_bounds_and_speed;
        Alcotest.test_case "waypoint moves nodes" `Quick
          test_random_waypoint_moves;
        Alcotest.test_case "waypoint invalid speeds" `Quick
          test_random_waypoint_invalid;
        Alcotest.test_case "gauss-markov bounds" `Quick
          test_gauss_markov_bounds;
        Alcotest.test_case "gauss-markov memory" `Quick
          test_gauss_markov_memory;
        Alcotest.test_case "partial mobility" `Quick
          test_partial_keeps_static_nodes;
      ] );
    ( "core.maintenance",
      [
        Alcotest.test_case "static refresh is identity" `Quick
          test_refresh_identity_when_static;
        Alcotest.test_case "refresh keeps invariants" `Quick
          test_refresh_valid_after_motion;
        Alcotest.test_case "refresh flaps less than rebuild" `Slow
          test_refresh_more_stable_than_rebuild;
        Alcotest.test_case "needs_refresh counts broken links" `Quick
          test_needs_refresh_counts;
      ] );
  ]
