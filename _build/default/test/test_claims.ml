(* Reproductions of the paper's side claims: the MST containment chain
   behind connectivity, and Section I's argument that Yao-family
   structures are not hop spanners while the CDS family is. *)

module G = Netgraph.Graph
module P = Geometry.Point

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let random_instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  (pts, Wireless.Udg.build pts ~radius)

(* ---------------- MST ---------------- *)

let test_mst_small () =
  (* square with one diagonal: MST drops the heaviest cycle edge *)
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 1. 1.; P.make 0. 1. |] in
  let g = G.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  let f = Netgraph.Mst.minimum_spanning_forest g pts in
  checki "n-1 edges" 3 (G.edge_count f);
  check "diagonal dropped" false (G.has_edge f 0 2);
  check "valid forest" true (Netgraph.Mst.is_spanning_forest g f);
  Alcotest.(check (float 1e-9)) "weight" 3. (Netgraph.Mst.forest_weight f pts)

let test_mst_disconnected () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 50. 0.; P.make 51. 0. |] in
  let g = G.of_edges 4 [ (0, 1); (2, 3) ] in
  let f = Netgraph.Mst.minimum_spanning_forest g pts in
  checki "two edges" 2 (G.edge_count f);
  check "valid forest" true (Netgraph.Mst.is_spanning_forest g f)

let test_mst_weight_optimal_vs_random_tree () =
  (* the MST never weighs more than any spanning structure *)
  let pts, udg = random_instance 800L 60 50. in
  let f = Netgraph.Mst.minimum_spanning_forest udg pts in
  check "valid" true (Netgraph.Mst.is_spanning_forest udg f);
  let bfs_tree =
    (* a BFS tree is a spanning tree; its weight bounds the MST *)
    let parent = Array.make (Array.length pts) (-1) in
    let seen = Array.make (Array.length pts) false in
    let q = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 q;
    let t = G.create (Array.length pts) in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            parent.(v) <- u;
            G.add_edge t u v;
            Queue.add v q
          end)
        (G.neighbors udg u)
    done;
    t
  in
  check "mst lighter" true
    (Netgraph.Mst.forest_weight f pts
    <= Netgraph.Mst.forest_weight bfs_tree pts +. 1e-9)

let test_mst_containment_chain () =
  (* MST ⊆ RNG ⊆ GG: the paper's connectivity argument for the flat
     structures *)
  for seed = 810 to 814 do
    let pts, udg = random_instance (Int64.of_int seed) 70 50. in
    let mst = Netgraph.Mst.minimum_spanning_forest udg pts in
    let rng_g = Wireless.Proximity.rng_graph udg pts in
    let gg = Wireless.Proximity.gabriel_graph udg pts in
    check "MST ⊆ RNG" true (G.is_subgraph mst rng_g);
    check "RNG ⊆ GG" true (G.is_subgraph rng_g gg)
  done

let test_mst_in_ldel () =
  (* consequently LDel and the primed backbone structures stay
     connected: GG ⊆ LDel1 and GG ⊆ PLDel were tested elsewhere;
     close the chain from the MST side *)
  let pts, udg = random_instance 820L 70 50. in
  let mst = Netgraph.Mst.minimum_spanning_forest udg pts in
  let l = Core.Ldel.build udg pts ~radius:50. in
  check "MST ⊆ PLDel" true (G.is_subgraph mst l.Core.Ldel.planar)

(* ---------------- Yao is not a hop spanner ---------------- *)

let test_yao_not_hop_spanner_on_line () =
  (* Section I: "n nodes evenly distributed on a unit segment" — the
     Yao structure keeps only each node's nearest neighbor per cone,
     so the two ends are Θ(n) hops apart even though the UDG connects
     them in one hop.  The backbone family keeps the hop stretch
     constant on the same input. *)
  let n = 40 in
  (* nodes at 0, d, 2d, ... (n-1)d with (n-1)d < radius: a clique.
     Exactly collinear, as in the paper's construction — every cone
     sees only the immediate left/right neighbor as nearest, so Yao
     degenerates to the path. *)
  let radius = 50. in
  let d = radius /. float_of_int n in
  let pts = Array.init n (fun i -> P.make (float_of_int i *. d) 0.) in
  let udg = Wireless.Udg.build pts ~radius in
  checki "udg is a clique" (n * (n - 1) / 2) (G.edge_count udg);
  let yao = Wireless.Proximity.yao_graph udg pts ~cones:6 in
  let hops_yao = (Netgraph.Traversal.bfs yao 0).(n - 1) in
  (* ends adjacent in UDG but Θ(n) apart in Yao *)
  checki "yao collapses to the path" (n - 1) hops_yao;
  (* the paper's structure: one dominator covers the whole clique, so
     hierarchical routing reaches anything in O(1) hops *)
  let bb = Core.Backbone.build pts ~radius in
  (match Core.Routing.hierarchical bb ~src:0 ~dst:(n - 1) with
  | Some p -> check "backbone O(1) hops" true (List.length p <= 4)
  | None -> Alcotest.fail "backbone must route");
  let s =
    Netgraph.Metrics.stretch_factors ~base:udg
      ~sub:bb.Core.Backbone.ldel_icds' pts
  in
  check "hop stretch constant" true (s.Netgraph.Metrics.hop_max <= 3.5)

let test_yao_is_length_spanner_anyway () =
  (* the same Yao graph has bounded LENGTH stretch — the contrast the
     paper draws (length spanner, not hop spanner) *)
  let pts, udg = random_instance 831L 70 50. in
  let yao = Wireless.Proximity.yao_graph udg pts ~cones:8 in
  let s =
    Netgraph.Metrics.stretch_factors ~one_hop_direct:false ~base:udg ~sub:yao
      pts
  in
  (* theory: 1 / (1 - 2 sin(pi/8)) ≈ 4.26 for 8 cones *)
  check "length stretch bounded" true (s.Netgraph.Metrics.len_max < 4.3)

let test_gabriel_power_stretch_one () =
  (* the classic result the paper cites from [12] (Li, Wan, Wang,
     Frieder): the Gabriel graph preserves every minimum-energy path
     exactly — power stretch factor 1 for beta >= 2 *)
  for seed = 860 to 863 do
    let pts, udg = random_instance (Int64.of_int seed) 60 50. in
    let gg = Wireless.Proximity.gabriel_graph udg pts in
    List.iter
      (fun beta ->
        let avg, mx =
          Netgraph.Metrics.power_stretch ~one_hop_direct:false ~base:udg
            ~sub:gg pts ~beta
        in
        check "avg = 1" true (Float.abs (avg -. 1.) < 1e-9);
        check "max = 1" true (Float.abs (mx -. 1.) < 1e-9))
      [ 2.; 3.; 4. ]
  done

(* ---------------- theoretical constants ---------------- *)

let test_bounds_values () =
  checki "C_1 = 9" 9 (Core.Bounds.dominators_within 1.);
  checki "C_2 = 25" 25 (Core.Bounds.dominators_within 2.);
  checki "C_3 = 49" 49 (Core.Bounds.dominators_within 3.);
  checki "ICDS degree = 5*25 + 49" 174 Core.Bounds.icds_degree;
  check "keil-gutwin ~ 2.42" true
    (Float.abs (Core.Bounds.delaunay_stretch -. 2.4184) < 1e-3)

let test_bounds_hold_empirically () =
  for seed = 880 to 883 do
    let pts, udg = random_instance (Int64.of_int seed) 90 50. in
    let cds = Core.Cds.of_udg udg in
    let roles = cds.Core.Cds.roles in
    ignore pts;
    Array.iteri
      (fun u r ->
        if r = Core.Mis.Dominatee then
          check "L1 respected" true
            (List.length (Core.Mis.dominators_of udg roles u)
            <= Core.Bounds.max_dominators_per_dominatee))
      roles;
    let d = Netgraph.Metrics.degree_stats cds.Core.Cds.icds in
    check "L8 respected" true
      (d.Netgraph.Metrics.deg_max <= Core.Bounds.icds_degree)
  done

let suites =
  [
    ( "netgraph.mst",
      [
        Alcotest.test_case "small square" `Quick test_mst_small;
        Alcotest.test_case "forest on disconnected" `Quick
          test_mst_disconnected;
        Alcotest.test_case "weight optimality" `Quick
          test_mst_weight_optimal_vs_random_tree;
        Alcotest.test_case "MST ⊆ RNG ⊆ GG" `Quick test_mst_containment_chain;
        Alcotest.test_case "MST ⊆ PLDel" `Quick test_mst_in_ldel;
      ] );
    ( "claims.yao",
      [
        Alcotest.test_case "Yao is not a hop spanner (line)" `Quick
          test_yao_not_hop_spanner_on_line;
        Alcotest.test_case "Yao is a length spanner" `Quick
          test_yao_is_length_spanner_anyway;
      ] );
    ( "claims.bounds",
      [
        Alcotest.test_case "constants" `Quick test_bounds_values;
        Alcotest.test_case "bounds hold empirically" `Quick
          test_bounds_hold_empirically;
      ] );
    ( "claims.power",
      [
        Alcotest.test_case "Gabriel power stretch is exactly 1" `Quick
          test_gabriel_power_stretch_one;
      ] );
  ]
