(* The synchronous message-passing engine: delivery, rounds,
   counters, quiescence. *)

module G = Netgraph.Graph
module E = Distsim.Engine

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Protocol: round 0, every node broadcasts its id; each node records
   what it hears.  Tests basic delivery to 1-hop neighbors. *)
let test_hello_delivery () =
  let g = G.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let proto =
    {
      E.init = (fun _ _ -> []);
      E.on_round =
        (fun ctx st inbox ->
          if ctx.E.round = 0 then ctx.E.broadcast ctx.E.me;
          st @ List.map (fun d -> d.E.msg) inbox);
    }
  in
  let states, stats = E.run ~classify:(fun _ -> "id") g proto in
  Alcotest.(check (list int)) "node 1 hears 0 and 2" [ 0; 2 ] states.(1);
  Alcotest.(check (list int)) "node 0 hears 1" [ 1 ] states.(0);
  checki "every node sent once" 4 (E.total_sent stats);
  checki "rounds: send, deliver, quiesce" 2 stats.E.rounds

let test_no_messages_quiesces_immediately () =
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  let proto =
    { E.init = (fun _ _ -> ()); E.on_round = (fun _ st _ -> st) }
  in
  let _, stats = E.run ~classify:(fun _ -> "x") g proto in
  checki "one silent round" 1 stats.E.rounds;
  checki "nothing sent" 0 (E.total_sent stats)

(* Flood: node 0 starts a token; every node forwards it once.  The
   number of rounds equals the eccentricity of node 0 plus the final
   silent round; everyone ends up with the token. *)
let test_flood () =
  let n = 6 in
  let g = G.of_edges n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let proto =
    {
      E.init = (fun me _ -> me = 0);
      (* has token? node 0 starts with it *)
      E.on_round =
        (fun ctx has inbox ->
          let receives = inbox <> [] in
          if (ctx.E.round = 0 && ctx.E.me = 0) || ((not has) && receives) then begin
            ctx.E.broadcast ();
            true
          end
          else has || receives);
    }
  in
  let states, stats = E.run ~classify:(fun () -> "token") g proto in
  check "all reached" true (Array.for_all Fun.id states);
  checki "each forwards once" n (E.total_sent stats);
  (* forwarding proceeds one hop per round: n send rounds + 1 silent *)
  checki "rounds" (n + 1) stats.E.rounds

let test_per_kind_counters () =
  let g = G.of_edges 2 [ (0, 1) ] in
  let proto =
    {
      E.init = (fun _ _ -> ());
      E.on_round =
        (fun ctx st _ ->
          if ctx.E.round = 0 then begin
            ctx.E.broadcast `A;
            ctx.E.broadcast `A;
            ctx.E.broadcast `B
          end;
          st);
    }
  in
  let _, stats =
    E.run ~classify:(function `A -> "a" | `B -> "b") g proto
  in
  Alcotest.(check (list (pair string int)))
    "kinds" [ ("a", 4); ("b", 2) ] stats.E.by_kind;
  checki "per node" 3 stats.E.sent.(0);
  checki "max" 3 (E.max_sent stats);
  Alcotest.(check (float 1e-9)) "avg" 3. (E.avg_sent stats)

let test_inbox_sender_order () =
  (* all three neighbors broadcast in round 0; inbox arrives sorted
     by sender id because nodes are stepped in id order *)
  let g = G.of_edges 4 [ (3, 0); (3, 1); (3, 2) ] in
  let proto =
    {
      E.init = (fun _ _ -> []);
      E.on_round =
        (fun ctx st inbox ->
          if ctx.E.round = 0 && ctx.E.me < 3 then ctx.E.broadcast ctx.E.me;
          st @ List.map (fun d -> d.E.from) inbox);
    }
  in
  let states, _ = E.run ~classify:string_of_int g proto in
  Alcotest.(check (list int)) "ordered inbox" [ 0; 1; 2 ] states.(3)

let test_runaway_protocol_fails () =
  let g = G.of_edges 2 [ (0, 1) ] in
  let proto =
    {
      E.init = (fun _ _ -> ());
      E.on_round =
        (fun ctx st _ ->
          ctx.E.broadcast ();
          st);
    }
  in
  check "raises" true
    (try
       ignore (E.run ~max_rounds:10 ~classify:(fun () -> "spam") g proto);
       false
     with Failure _ -> true)

let test_merge_stats () =
  let g = G.of_edges 2 [ (0, 1) ] in
  let once tag =
    {
      E.init = (fun _ _ -> ());
      E.on_round =
        (fun ctx st _ ->
          if ctx.E.round = 0 && ctx.E.me = 0 then ctx.E.broadcast tag;
          st);
    }
  in
  let _, s1 = E.run ~classify:Fun.id g (once "x") in
  let _, s2 = E.run ~classify:Fun.id g (once "y") in
  let m = E.merge s1 s2 in
  checki "total" 2 (E.total_sent m);
  checki "node 0" 2 m.E.sent.(0);
  Alcotest.(check (list (pair string int)))
    "kinds merged" [ ("x", 1); ("y", 1) ] m.E.by_kind;
  check "mismatch raises" true
    (try
       let g3 = G.create 3 in
       let _, s3 = E.run ~classify:Fun.id g3 (once "z") in
       ignore (E.merge s1 s3);
       false
     with Invalid_argument _ -> true)

let test_isolated_nodes () =
  (* isolated nodes run but their broadcasts reach nobody *)
  let g = G.create 3 in
  let proto =
    {
      E.init = (fun _ _ -> 0);
      E.on_round =
        (fun ctx st inbox ->
          if ctx.E.round = 0 then ctx.E.broadcast ();
          st + List.length inbox);
    }
  in
  let states, stats = E.run ~classify:(fun () -> "ping") g proto in
  check "nothing delivered" true (Array.for_all (fun s -> s = 0) states);
  checki "all sent" 3 (E.total_sent stats)

let suites =
  [
    ( "distsim.engine",
      [
        Alcotest.test_case "hello delivery" `Quick test_hello_delivery;
        Alcotest.test_case "quiesce when silent" `Quick
          test_no_messages_quiesces_immediately;
        Alcotest.test_case "flood over path" `Quick test_flood;
        Alcotest.test_case "per-kind counters" `Quick test_per_kind_counters;
        Alcotest.test_case "inbox sender order" `Quick test_inbox_sender_order;
        Alcotest.test_case "runaway protocol detected" `Quick
          test_runaway_protocol_fails;
        Alcotest.test_case "merge stats" `Quick test_merge_stats;
        Alcotest.test_case "isolated nodes" `Quick test_isolated_nodes;
      ] );
  ]
