(* Delaunay triangulation: exactness of the empty-circumcircle
   property, combinatorial counts, degeneracies. *)

module P = Geometry.Point
module DT = Delaunay.Triangulation

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let p = P.make

let test_single_triangle () =
  let pts = [| p 0. 0.; p 1. 0.; p 0. 1. |] in
  let t = DT.triangulate pts in
  checki "one triangle" 1 (List.length (DT.triangles t));
  checki "three edges" 3 (List.length (DT.edges t));
  check "has triangle any order" true (DT.has_triangle t 2 0 1);
  Alcotest.(check (list int)) "hull" [ 0; 1; 2 ] (List.sort compare (DT.hull t))

let test_square_diagonal () =
  (* unit square plus center: 4 triangles around the center *)
  let pts = [| p 0. 0.; p 1. 0.; p 1. 1.; p 0. 1.; p 0.5 0.5 |] in
  let t = DT.triangulate pts in
  checki "four triangles" 4 (List.length (DT.triangles t));
  check "all delaunay" true (DT.is_delaunay pts (DT.triangles t));
  checki "hull size" 4 (List.length (DT.hull t))

let test_cocircular_square () =
  (* a plain square: 4 cocircular points; either diagonal gives a
     valid Delaunay triangulation *)
  let pts = [| p 0. 0.; p 1. 0.; p 1. 1.; p 0. 1. |] in
  let t = DT.triangulate pts in
  checki "two triangles" 2 (List.length (DT.triangles t));
  checki "five edges" 5 (List.length (DT.edges t))

let test_collinear_fallback () =
  let pts = [| p 3. 3.; p 0. 0.; p 1. 1.; p 2. 2. |] in
  let t = DT.triangulate pts in
  checki "no triangles" 0 (List.length (DT.triangles t));
  (* path along the line in sorted order *)
  Alcotest.(check (list (pair int int)))
    "path edges"
    [ (1, 2); (2, 3); (0, 3) ]
    (DT.edges t)

let test_two_points () =
  let t = DT.triangulate [| p 0. 0.; p 5. 5. |] in
  Alcotest.(check (list (pair int int))) "single edge" [ (0, 1) ] (DT.edges t)

let test_duplicate_rejected () =
  check "duplicate raises" true
    (try
       ignore (DT.triangulate [| p 0. 0.; p 1. 1.; p 0. 0. |]);
       false
     with Invalid_argument _ -> true)

let test_point_on_hull_edge () =
  (* inserting a point exactly on an existing hull edge *)
  let pts = [| p 0. 0.; p 4. 0.; p 2. 3.; p 2. 0. |] in
  let t = DT.triangulate pts in
  check "delaunay" true (DT.is_delaunay pts (DT.triangles t));
  checki "two triangles" 2 (List.length (DT.triangles t))

let test_point_outside_hull_collinear () =
  (* new point collinear with a hull edge, beyond it *)
  let pts = [| p 0. 0.; p 2. 0.; p 1. 2.; p 4. 0. |] in
  let t = DT.triangulate pts in
  check "delaunay" true (DT.is_delaunay pts (DT.triangles t));
  check "covers all points" true
    (List.for_all
       (fun v -> List.exists (fun (a, b) -> a = v || b = v) (DT.edges t))
       [ 0; 1; 2; 3 ])

let euler_holds n t =
  (* for a triangulation of a point set with h hull points (general
     position): T = 2n - 2 - h, E = 3n - 3 - h *)
  let h = List.length (DT.hull t) in
  List.length (DT.triangles t) = (2 * n) - 2 - h
  && List.length (DT.edges t) = (3 * n) - 3 - h

let test_random_delaunay () =
  let rng = Wireless.Rand.create 12345L in
  for _ = 1 to 25 do
    let n = 3 + Wireless.Rand.int rng 120 in
    let pts =
      Array.init n (fun _ ->
          p (Wireless.Rand.float rng 100.) (Wireless.Rand.float rng 100.))
    in
    let t = DT.triangulate pts in
    check "empty circumcircle" true (DT.is_delaunay pts (DT.triangles t));
    check "euler counts" true (euler_holds n t)
  done

let test_random_insertion_order_invariance () =
  (* the Delaunay triangulation is unique (no 4 cocircular points
     w.p. 1), so shuffling the input gives the same edge set *)
  let rng = Wireless.Rand.create 99L in
  let n = 60 in
  let pts =
    Array.init n (fun _ ->
        p (Wireless.Rand.float rng 50.) (Wireless.Rand.float rng 50.))
  in
  let t1 = DT.triangulate pts in
  let perm = Array.init n (fun i -> i) in
  Wireless.Rand.shuffle rng perm;
  let pts2 = Array.map (fun i -> pts.(i)) perm in
  let t2 = DT.triangulate pts2 in
  let back = Array.make n 0 in
  Array.iteri (fun new_i old_i -> back.(new_i) <- old_i) perm;
  let remapped =
    List.sort compare
      (List.map
         (fun (u, v) ->
           let a = back.(u) and b = back.(v) in
           (min a b, max a b))
         (DT.edges t2))
  in
  Alcotest.(check (list (pair int int)))
    "same edges under permutation" (DT.edges t1) remapped

let test_hull_matches_convex_hull () =
  let rng = Wireless.Rand.create 17L in
  for _ = 1 to 10 do
    let n = 10 + Wireless.Rand.int rng 50 in
    let pts =
      Array.init n (fun _ ->
          p (Wireless.Rand.float rng 10.) (Wireless.Rand.float rng 10.))
    in
    let t = DT.triangulate pts in
    let dt_hull =
      List.sort P.compare (List.map (fun i -> pts.(i)) (DT.hull t))
    in
    let geo_hull =
      List.sort P.compare (Geometry.Hull.convex_hull (Array.to_list pts))
    in
    check "hull = convex hull" true (dt_hull = geo_hull)
  done

let test_triangles_of_vertex () =
  let pts = [| p 0. 0.; p 1. 0.; p 1. 1.; p 0. 1.; p 0.5 0.5 |] in
  let t = DT.triangulate pts in
  checki "center in all four" 4 (List.length (DT.triangles_of_vertex t 4));
  checki "corner in two" 2 (List.length (DT.triangles_of_vertex t 0))

let test_gabriel_subset_of_delaunay () =
  (* Gabriel edges (empty diametral disk over ALL points) are always
     Delaunay edges *)
  let rng = Wireless.Rand.create 31L in
  for _ = 1 to 10 do
    let n = 40 in
    let pts =
      Array.init n (fun _ ->
          p (Wireless.Rand.float rng 100.) (Wireless.Rand.float rng 100.))
    in
    let t = DT.triangulate pts in
    let del_edges = DT.edges t in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let gabriel =
          Array.for_all
            (fun w ->
              P.equal w pts.(u) || P.equal w pts.(v)
              || not (Geometry.Circle.in_diametral pts.(u) pts.(v) w))
            pts
        in
        if gabriel then
          check "gabriel edge is delaunay" true (List.mem (u, v) del_edges)
      done
    done
  done

let suites =
  [
    ( "delaunay",
      [
        Alcotest.test_case "single triangle" `Quick test_single_triangle;
        Alcotest.test_case "square with center" `Quick test_square_diagonal;
        Alcotest.test_case "cocircular square" `Quick test_cocircular_square;
        Alcotest.test_case "collinear fallback" `Quick test_collinear_fallback;
        Alcotest.test_case "two points" `Quick test_two_points;
        Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
        Alcotest.test_case "point on hull edge" `Quick test_point_on_hull_edge;
        Alcotest.test_case "collinear outside hull" `Quick
          test_point_outside_hull_collinear;
        Alcotest.test_case "random: empty circumcircle + euler" `Quick
          test_random_delaunay;
        Alcotest.test_case "insertion order invariance" `Quick
          test_random_insertion_order_invariance;
        Alcotest.test_case "hull = convex hull" `Quick
          test_hull_matches_convex_hull;
        Alcotest.test_case "triangles of vertex" `Quick
          test_triangles_of_vertex;
        Alcotest.test_case "gabriel ⊆ delaunay" `Quick
          test_gabriel_subset_of_delaunay;
      ] );
  ]
