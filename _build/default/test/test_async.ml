(* The asynchronous engine and the async clustering protocol. *)

module G = Netgraph.Graph
module AE = Distsim.Async_engine

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let unit_delay ~from:_ ~dst:_ ~seq:_ = 1.

let random_delay rng ~from:_ ~dst:_ ~seq:_ =
  0.01 +. Wireless.Rand.float rng 10.

(* ---------------- engine ---------------- *)

let test_async_delivery_order () =
  (* two messages from 0 to 1 with inverted delays arrive reordered *)
  let g = G.of_edges 2 [ (0, 1) ] in
  let delay ~from:_ ~dst:_ ~seq = if seq = 0 then 10. else 1. in
  let proto =
    {
      AE.init = (fun _ _ -> []);
      AE.on_start =
        (fun ctx st ->
          if ctx.AE.me = 0 then begin
            ctx.AE.broadcast "first";
            ctx.AE.broadcast "second"
          end;
          st);
      AE.on_message = (fun _ st d -> st @ [ d.AE.msg ]);
    }
  in
  let states, stats = AE.run ~delay g proto in
  Alcotest.(check (list string))
    "reordered" [ "second"; "first" ] states.(1);
  checki "two deliveries" 2 stats.AE.deliveries;
  Alcotest.(check (float 1e-9)) "finish at slowest" 10. stats.AE.finish_time

let test_async_delivery_times () =
  let g = G.of_edges 3 [ (0, 1); (0, 2) ] in
  let delay ~from:_ ~dst ~seq:_ = if dst = 1 then 2. else 5. in
  let proto =
    {
      AE.init = (fun _ _ -> 0.);
      AE.on_start =
        (fun ctx st ->
          if ctx.AE.me = 0 then ctx.AE.broadcast ();
          st);
      AE.on_message = (fun _ _ d -> d.AE.time);
    }
  in
  let states, _ = AE.run ~delay g proto in
  Alcotest.(check (float 1e-9)) "node 1 at 2" 2. states.(1);
  Alcotest.(check (float 1e-9)) "node 2 at 5" 5. states.(2)

let test_async_invalid_delay () =
  let g = G.of_edges 2 [ (0, 1) ] in
  let proto =
    {
      AE.init = (fun _ _ -> ());
      AE.on_start =
        (fun ctx st ->
          if ctx.AE.me = 0 then ctx.AE.broadcast ();
          st);
      AE.on_message = (fun _ st _ -> st);
    }
  in
  check "zero delay rejected" true
    (try
       ignore (AE.run ~delay:(fun ~from:_ ~dst:_ ~seq:_ -> 0.) g proto);
       false
     with Invalid_argument _ -> true)

let test_async_runaway_detected () =
  (* ping-pong forever: the delivery bound must fire *)
  let g = G.of_edges 2 [ (0, 1) ] in
  let proto =
    {
      AE.init = (fun _ _ -> ());
      AE.on_start =
        (fun ctx st ->
          if ctx.AE.me = 0 then ctx.AE.broadcast ();
          st);
      AE.on_message =
        (fun ctx st _ ->
          ctx.AE.broadcast ();
          st);
    }
  in
  check "bound fires" true
    (try
       ignore (AE.run ~max_messages:1000 ~delay:unit_delay g proto);
       false
     with Failure _ -> true)

(* ---------------- async clustering ---------------- *)

let instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  Wireless.Udg.build pts ~radius

let test_async_cluster_equals_sync_unit_delays () =
  for seed = 950 to 954 do
    let udg = instance (Int64.of_int seed) 80 50. in
    let roles, stats = Core.Async_cluster.run ~delay:unit_delay udg in
    check "equals synchronous MIS" true (roles = Core.Mis.compute udg);
    (* exactly one announcement per node *)
    Array.iter (fun s -> checki "one send" 1 s) stats.AE.sent
  done

let test_async_cluster_equals_sync_random_delays () =
  (* the headline: arbitrary (positive) per-message delays do not
     change the outcome *)
  for seed = 960 to 969 do
    let udg = instance (Int64.of_int seed) 70 50. in
    let expected = Core.Mis.compute udg in
    let rng = Wireless.Rand.create (Int64.of_int (seed * 31)) in
    let roles, _ = Core.Async_cluster.run ~delay:(random_delay rng) udg in
    check "delay-independent" true (roles = expected)
  done

let test_async_cluster_adversarial_delays () =
  (* slow down exactly the announcements of small-ID nodes — the
     decisions that everything else waits on *)
  let udg = instance 970L 60 50. in
  let expected = Core.Mis.compute udg in
  let delay ~from ~dst:_ ~seq:_ = if from < 10 then 1000. else 0.5 in
  let roles, stats = Core.Async_cluster.run ~delay udg in
  check "still correct" true (roles = expected);
  check "finish dominated by stragglers" true (stats.AE.finish_time >= 1000.)

let test_async_cluster_path () =
  let g = G.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let roles, _ = Core.Async_cluster.run ~delay:unit_delay g in
  check "path MIS" true
    (roles
    = [| Core.Mis.Dominator; Core.Mis.Dominatee; Core.Mis.Dominator;
         Core.Mis.Dominatee; Core.Mis.Dominator |])

let suites =
  [
    ( "distsim.async",
      [
        Alcotest.test_case "reordered delivery" `Quick
          test_async_delivery_order;
        Alcotest.test_case "delivery times" `Quick test_async_delivery_times;
        Alcotest.test_case "invalid delay" `Quick test_async_invalid_delay;
        Alcotest.test_case "runaway detected" `Quick
          test_async_runaway_detected;
      ] );
    ( "core.async_cluster",
      [
        Alcotest.test_case "equals sync (unit delays)" `Quick
          test_async_cluster_equals_sync_unit_delays;
        Alcotest.test_case "equals sync (random delays)" `Quick
          test_async_cluster_equals_sync_random_delays;
        Alcotest.test_case "adversarial delays" `Quick
          test_async_cluster_adversarial_delays;
        Alcotest.test_case "path network" `Quick test_async_cluster_path;
      ] );
  ]
