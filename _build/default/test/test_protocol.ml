(* The distributed protocol stack: exact agreement with the
   centralized pipeline, message bounds, per-phase accounting. *)

module G = Netgraph.Graph
module E = Distsim.Engine

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  pts

let test_matches_centralized () =
  for seed = 200 to 207 do
    let pts = instance (Int64.of_int seed) 70 50. in
    let bb = Core.Backbone.build pts ~radius:50. in
    let pr = Core.Protocol.run pts ~radius:50. in
    check "roles" true (pr.Core.Protocol.roles = bb.Core.Backbone.cds.Core.Cds.roles);
    check "connectors" true
      (pr.Core.Protocol.connector
      = bb.Core.Backbone.cds.Core.Cds.connectors.Core.Connectors.connector);
    check "cds edges" true
      (pr.Core.Protocol.cds_edges
      = bb.Core.Backbone.cds.Core.Cds.connectors.Core.Connectors.cds_edges);
    check "icds edges" true
      (pr.Core.Protocol.icds_edges
      = List.sort compare (G.edges bb.Core.Backbone.cds.Core.Cds.icds));
    check "ldel triangles" true
      (pr.Core.Protocol.ldel_triangles
      = bb.Core.Backbone.ldel_icds.Core.Ldel.triangles);
    check "kept triangles" true
      (pr.Core.Protocol.kept_triangles
      = bb.Core.Backbone.ldel_icds.Core.Ldel.kept_triangles);
    check "gabriel edges" true
      (pr.Core.Protocol.gabriel_edges
      = bb.Core.Backbone.ldel_icds.Core.Ldel.gabriel_edges);
    check "final graphs" true
      (G.equal pr.Core.Protocol.ldel_graph bb.Core.Backbone.ldel_icds_g)
  done

let test_message_kinds_present () =
  let pts = instance 210L 80 50. in
  let pr = Core.Protocol.run pts ~radius:50. in
  let kinds s = List.map fst s.E.by_kind in
  check "hello in clustering" true
    (List.mem "Hello" (kinds pr.Core.Protocol.stats_cluster));
  check "IamDominator" true
    (List.mem "IamDominator" (kinds pr.Core.Protocol.stats_cluster));
  check "TryConnector" true
    (List.mem "TryConnector" (kinds pr.Core.Protocol.stats_connector));
  check "Status" true (List.mem "Status" (kinds pr.Core.Protocol.stats_status));
  check "Proposal" true
    (List.mem "Proposal" (kinds pr.Core.Protocol.stats_ldel))

let test_hello_and_status_exactly_once () =
  let pts = instance 211L 60 50. in
  let n = Array.length pts in
  let pr = Core.Protocol.run pts ~radius:50. in
  checki "hello = n"
    n
    (List.assoc "Hello" pr.Core.Protocol.stats_cluster.E.by_kind);
  checki "status = n"
    n
    (List.assoc "Status" pr.Core.Protocol.stats_status.E.by_kind)

let test_iamdominatee_bound () =
  (* Lemma 1: a node has at most 5 dominators, so at most 5
     IamDominatee broadcasts each *)
  let pts = instance 212L 90 50. in
  let n = Array.length pts in
  let pr = Core.Protocol.run pts ~radius:50. in
  match List.assoc_opt "IamDominatee" pr.Core.Protocol.stats_cluster.E.by_kind with
  | Some total -> check "≤ 5 per node" true (total <= 5 * n)
  | None -> Alcotest.fail "no IamDominatee messages"

let test_per_node_message_bound () =
  (* the paper's headline: O(1) messages per node.  Check a generous
     numeric constant across densities. *)
  List.iter
    (fun (seed, n, radius) ->
      let pts = instance seed n radius in
      let pr = Core.Protocol.run pts ~radius in
      let total = Core.Protocol.ldel_stats pr in
      check
        (Printf.sprintf "n=%d r=%g max per node" n radius)
        true
        (E.max_sent total <= 120))
    [ (220L, 50, 50.); (221L, 100, 50.); (222L, 150, 40.); (223L, 100, 70.) ]

let test_stats_monotone () =
  let pts = instance 213L 70 50. in
  let pr = Core.Protocol.run pts ~radius:50. in
  let c = E.total_sent (Core.Protocol.cds_stats pr) in
  let i = E.total_sent (Core.Protocol.icds_stats pr) in
  let l = E.total_sent (Core.Protocol.ldel_stats pr) in
  check "cds ≤ icds" true (c < i);
  check "icds ≤ ldel" true (i <= l)

let test_protocol_planar_output () =
  let pts = instance 214L 80 50. in
  let pr = Core.Protocol.run pts ~radius:50. in
  check "distributed PLDel(ICDS) planar" true
    (Netgraph.Planarity.is_planar pr.Core.Protocol.ldel_graph pts)

let test_two_node_network () =
  let pts = [| Geometry.Point.make 0. 0.; Geometry.Point.make 10. 0. |] in
  let pr = Core.Protocol.run pts ~radius:20. in
  (* node 0 wins, node 1 is its dominatee; no connectors *)
  check "0 dominator" true (pr.Core.Protocol.roles.(0) = Core.Mis.Dominator);
  check "1 dominatee" true (pr.Core.Protocol.roles.(1) = Core.Mis.Dominatee);
  check "no connectors" true
    (Array.for_all not pr.Core.Protocol.connector);
  Alcotest.(check (list (pair int int))) "no cds edges" [] pr.Core.Protocol.cds_edges

let test_path3_network () =
  (* collinear 0 - 1 - 2 with unit spacing: 0, 2 dominators, 1 the
     connector; the distributed run must find the 2-hop connector *)
  let pts =
    [|
      Geometry.Point.make 0. 0.;
      Geometry.Point.make 10. 0.;
      Geometry.Point.make 20. 0.;
    |]
  in
  let pr = Core.Protocol.run pts ~radius:12. in
  check "1 connector" true pr.Core.Protocol.connector.(1);
  Alcotest.(check (list (pair int int)))
    "cds chain" [ (0, 1); (1, 2) ] pr.Core.Protocol.cds_edges

let test_ldel2_matches_centralized () =
  for seed = 240 to 244 do
    let pts = instance (Int64.of_int seed) 70 50. in
    let bb = Core.Backbone.build pts ~radius:50. in
    let l2c =
      Core.Ldel.build_k bb.Core.Backbone.cds.Core.Cds.icds pts ~radius:50.
        ~k:2
    in
    let l2d = Core.Protocol.run_ldel2 pts ~radius:50. in
    check "triangles equal" true
      (l2d.Core.Protocol.l2_triangles = l2c.Core.Ldel.triangles);
    check "gabriel equal" true
      (l2d.Core.Protocol.l2_gabriel_edges = l2c.Core.Ldel.gabriel_edges);
    check "graphs equal (planar without removal)" true
      (G.equal l2d.Core.Protocol.l2_graph l2c.Core.Ldel.planar);
    check "planar" true
      (Netgraph.Planarity.is_planar l2d.Core.Protocol.l2_graph pts)
  done

let suites =
  [
    ( "core.protocol",
      [
        Alcotest.test_case "≡ centralized pipeline" `Slow
          test_matches_centralized;
        Alcotest.test_case "message kinds present" `Quick
          test_message_kinds_present;
        Alcotest.test_case "hello/status once per node" `Quick
          test_hello_and_status_exactly_once;
        Alcotest.test_case "IamDominatee ≤ 5 per node" `Quick
          test_iamdominatee_bound;
        Alcotest.test_case "O(1) messages per node" `Slow
          test_per_node_message_bound;
        Alcotest.test_case "phase stats monotone" `Quick test_stats_monotone;
        Alcotest.test_case "distributed output planar" `Quick
          test_protocol_planar_output;
        Alcotest.test_case "two-node network" `Quick test_two_node_network;
        Alcotest.test_case "path-3 network" `Quick test_path3_network;
        Alcotest.test_case "LDel² pipeline ≡ centralized" `Slow
          test_ldel2_matches_centralized;
      ] );
  ]
