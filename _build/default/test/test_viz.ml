(* SVG rendering and the LDel^k extension. *)

module P = Geometry.Point
module G = Netgraph.Graph

let check = Alcotest.(check bool)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_svg_basic () =
  let pts = [| P.make 0. 0.; P.make 10. 0.; P.make 5. 8. |] in
  let world = Geometry.Bbox.of_points (Array.to_list pts) in
  let svg = Viz.Svg.create ~width:300 ~height:300 ~world in
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  Viz.Svg.add_edges svg pts g ~stroke:"black" ~stroke_width:1.;
  Viz.Svg.add_nodes svg pts ~style_of:(fun i ->
      if i = 0 then Viz.Svg.dominator_style else Viz.Svg.dominatee_style);
  Viz.Svg.add_path svg pts [ 0; 1; 2 ] ~stroke:"red" ~stroke_width:2.;
  Viz.Svg.add_label svg pts.(0) "sink";
  let s = Viz.Svg.to_string svg in
  check "svg root" true (contains ~needle:"<svg" s);
  check "two lines" true (contains ~needle:"<line" s);
  check "square for dominator" true (contains ~needle:"<rect" s);
  check "circles for others" true (contains ~needle:"<circle" s);
  check "route polyline" true (contains ~needle:"<polyline" s);
  check "label" true (contains ~needle:">sink</text>" s);
  check "closes" true (contains ~needle:"</svg>" s)

let test_svg_projection_flips_y () =
  (* the world origin must land at the bottom-left of the canvas *)
  let pts = [| P.make 0. 0.; P.make 0. 100. |] in
  let world = Geometry.Bbox.make ~xmin:0. ~ymin:0. ~xmax:100. ~ymax:100. in
  let svg = Viz.Svg.create ~width:100 ~height:100 ~world in
  Viz.Svg.add_label svg pts.(0) "low";
  Viz.Svg.add_label svg pts.(1) "high";
  let s = Viz.Svg.to_string svg in
  (* "low" (world y=0) must have a larger SVG y than "high" (world
     y=100); extract the y attribute of each label's line *)
  let y_of marker =
    let line =
      List.find
        (fun l -> contains ~needle:marker l)
        (String.split_on_char '\n' s)
    in
    Scanf.sscanf line "<text x=\"%_f\" y=\"%f\"" Fun.id
  in
  check "flip" true (y_of ">low<" > y_of ">high<")

let test_svg_writes_file () =
  let pts = [| P.make 0. 0.; P.make 1. 1. |] in
  let world = Geometry.Bbox.of_points (Array.to_list pts) in
  let svg = Viz.Svg.create ~width:50 ~height:50 ~world in
  Viz.Svg.add_edges svg pts (G.of_edges 2 [ (0, 1) ]) ~stroke:"blue"
    ~stroke_width:0.5;
  let file = Filename.temp_file "geospanner" ".svg" in
  Viz.Svg.write_file svg file;
  let ic = open_in file in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove file;
  check "non-empty file" true (len > 100)

(* ---------------- Chart ---------------- *)

let test_chart_basic () =
  let s1 =
    { Viz.Chart.label = "alpha max"; points = [ (0., 1.); (1., 3.); (2., 2.) ] }
  in
  let s2 =
    { Viz.Chart.label = "beta avg"; points = [ (0., 0.5); (1., 1.); (2., 1.5) ] }
  in
  let svg =
    Viz.Chart.render ~title:"demo" ~xlabel:"x" ~ylabel:"y" [ s1; s2 ]
  in
  check "svg" true (contains ~needle:"<svg" svg);
  check "two polylines" true
    (List.length
       (List.filter
          (fun l -> contains ~needle:"<polyline" l)
          (String.split_on_char '\n' svg))
    = 2);
  check "legend labels" true
    (contains ~needle:"alpha max" svg && contains ~needle:"beta avg" svg);
  check "title" true (contains ~needle:">demo</text>" svg);
  check "axis labels" true (contains ~needle:">x</text>" svg)

let test_chart_empty_rejected () =
  check "no data" true
    (try
       ignore
         (Viz.Chart.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
            [ { Viz.Chart.label = "e"; points = [] } ]);
       false
     with Invalid_argument _ -> true)

let test_chart_constant_series () =
  (* a flat line must not divide by zero *)
  let s = { Viz.Chart.label = "const"; points = [ (1., 5.); (2., 5.) ] } in
  let svg = Viz.Chart.render ~title:"flat" ~xlabel:"x" ~ylabel:"y" [ s ] in
  check "renders" true (contains ~needle:"</svg>" svg)

(* ---------------- LDel^k ---------------- *)

let random_instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  (pts, Wireless.Udg.build pts ~radius)

let test_ldel_k1_equals_build () =
  let pts, udg = random_instance 500L 70 50. in
  let l1 = Core.Ldel.build udg pts ~radius:50. in
  let lk = Core.Ldel.build_k udg pts ~radius:50. ~k:1 in
  check "same triangles" true (l1.Core.Ldel.triangles = lk.Core.Ldel.triangles);
  check "same planar graph" true
    (G.equal l1.Core.Ldel.planar lk.Core.Ldel.planar)

let test_ldel_k2_planar_without_removal () =
  (* Li et al.: LDel^k is planar outright for k >= 2 — the
     planarization pass must remove nothing *)
  for seed = 510 to 515 do
    let pts, udg = random_instance (Int64.of_int seed) 80 50. in
    let l2 = Core.Ldel.build_k udg pts ~radius:50. ~k:2 in
    check "ldel2 planar before removal" true
      (Netgraph.Planarity.is_planar l2.Core.Ldel.ldel1 pts);
    check "nothing removed" true
      (List.length l2.Core.Ldel.kept_triangles
      = List.length l2.Core.Ldel.triangles)
  done

let test_ldel_k_monotone () =
  (* larger k sees more blockers, so accepts fewer (or equal)
     triangles: LDel^{k+1} triangles ⊆ LDel^k triangles *)
  let pts, udg = random_instance 520L 80 50. in
  let l1 = Core.Ldel.build_k udg pts ~radius:50. ~k:1 in
  let l2 = Core.Ldel.build_k udg pts ~radius:50. ~k:2 in
  let l3 = Core.Ldel.build_k udg pts ~radius:50. ~k:3 in
  let module TS = Set.Make (struct
    type t = int * int * int

    let compare = compare
  end) in
  let s1 = TS.of_list l1.Core.Ldel.triangles in
  let s2 = TS.of_list l2.Core.Ldel.triangles in
  let s3 = TS.of_list l3.Core.Ldel.triangles in
  check "LDel2 ⊆ LDel1" true (TS.subset s2 s1);
  check "LDel3 ⊆ LDel2" true (TS.subset s3 s2)

let test_ldel_k2_contains_udel () =
  (* unit Delaunay triangles survive any k *)
  let pts, udg = random_instance 521L 70 50. in
  let l2 = Core.Ldel.build_k udg pts ~radius:50. ~k:2 in
  let udel = Wireless.Proximity.udel pts ~radius:50. in
  check "UDel ⊆ LDel2" true (G.is_subgraph udel l2.Core.Ldel.ldel1);
  check "LDel2 connected" true
    (Netgraph.Components.is_connected l2.Core.Ldel.planar)

let test_ldel_k_invalid () =
  let pts, udg = random_instance 522L 20 50. in
  check "k = 0 rejected" true
    (try
       ignore (Core.Ldel.build_k udg pts ~radius:50. ~k:0);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "viz.svg",
      [
        Alcotest.test_case "element generation" `Quick test_svg_basic;
        Alcotest.test_case "y-flip projection" `Quick
          test_svg_projection_flips_y;
        Alcotest.test_case "file output" `Quick test_svg_writes_file;
      ] );
    ( "viz.chart",
      [
        Alcotest.test_case "basic chart" `Quick test_chart_basic;
        Alcotest.test_case "empty rejected" `Quick test_chart_empty_rejected;
        Alcotest.test_case "constant series" `Quick test_chart_constant_series;
      ] );
    ( "core.ldel_k",
      [
        Alcotest.test_case "k=1 equals build" `Quick test_ldel_k1_equals_build;
        Alcotest.test_case "k=2 planar without removal" `Quick
          test_ldel_k2_planar_without_removal;
        Alcotest.test_case "monotone in k" `Quick test_ldel_k_monotone;
        Alcotest.test_case "UDel ⊆ LDel2, connected" `Quick
          test_ldel_k2_contains_udel;
        Alcotest.test_case "invalid k" `Quick test_ldel_k_invalid;
      ] );
  ]
