test/test_distsim.ml: Alcotest Array Distsim Fun List Netgraph
