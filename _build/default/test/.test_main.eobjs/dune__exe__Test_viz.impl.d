test/test_viz.ml: Alcotest Array Core Filename Fun Geometry Int64 List Netgraph Scanf Set String Sys Viz Wireless
