test/test_broadcast.ml: Alcotest Array Core Int64 List Netgraph Wireless
