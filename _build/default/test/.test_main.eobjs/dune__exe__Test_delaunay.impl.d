test/test_delaunay.ml: Alcotest Array Delaunay Geometry List Wireless
