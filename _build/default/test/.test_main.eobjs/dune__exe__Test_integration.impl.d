test/test_integration.ml: Alcotest Array Core Float List Netgraph Wireless
