test/test_protocol.ml: Alcotest Array Core Distsim Geometry Int64 List Netgraph Printf Wireless
