test/test_packetsim.ml: Alcotest Array Core Geometry Int64 Netgraph Wireless
