test/test_energy.ml: Alcotest Array Core List Printf Wireless
