test/test_mis.ml: Alcotest Array Core List Netgraph Wireless
