test/test_stress.ml: Alcotest Array Core Delaunay Distsim Float Geometry List Netgraph Wireless
