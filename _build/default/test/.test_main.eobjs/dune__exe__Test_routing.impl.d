test/test_routing.ml: Alcotest Array Core Geometry Int64 List Netgraph Printf Wireless
