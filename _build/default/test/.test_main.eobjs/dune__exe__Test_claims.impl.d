test/test_claims.ml: Alcotest Array Core Float Geometry Int64 List Netgraph Queue Wireless
