test/test_properties.ml: Array Core Delaunay Geometry Hashtbl Int64 List Netgraph Printf QCheck QCheck_alcotest Wireless
