test/test_maintenance.ml: Alcotest Array Core Geometry List Netgraph Printf Wireless
