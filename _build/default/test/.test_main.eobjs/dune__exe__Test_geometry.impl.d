test/test_geometry.ml: Alcotest Array Float Geometry List Wireless
