test/test_ldel.ml: Alcotest Array Core Delaunay Geometry Int64 List Netgraph Set Wireless
