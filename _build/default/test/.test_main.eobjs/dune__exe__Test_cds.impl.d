test/test_cds.ml: Alcotest Array Core Fun Geometry Int64 List Netgraph Printf Wireless
