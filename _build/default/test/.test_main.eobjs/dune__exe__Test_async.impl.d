test/test_async.ml: Alcotest Array Core Distsim Int64 Netgraph Wireless
