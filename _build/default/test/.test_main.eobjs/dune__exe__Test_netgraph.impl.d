test/test_netgraph.ml: Alcotest Array Geometry List Netgraph
