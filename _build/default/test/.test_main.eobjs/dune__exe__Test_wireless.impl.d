test/test_wireless.ml: Alcotest Array Float Fun Geometry Int64 Netgraph Wireless
