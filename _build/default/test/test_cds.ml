(* Connectors (Algorithm 1) and the CDS structure family. *)

module G = Netgraph.Graph
module P = Geometry.Point

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let path n = G.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let random_instance seed n side radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side ~radius ~max_attempts:2000
  in
  (pts, Wireless.Udg.build pts ~radius)

(* ---------------- elect ---------------- *)

let test_elect_local_minima () =
  (* candidates 1, 2, 3 on a path: 1 and 3 don't hear each other only
     if not adjacent.  On path 1-2-3 (within graph 0..4), 1 beats 2;
     3 hears 2 (loses to nobody smaller adjacent) — 3's neighbors
     among candidates: {2}; 3 > 2 so 3 loses?  No: rule is "w wins
     iff w smaller than every candidate it hears".  3 hears 2 and
     2 < 3, so 3 loses; 1 hears 2, 1 < 2, 1 wins; 2 hears 1 and 3,
     1 < 2, so 2 loses. *)
  let g = path 5 in
  Alcotest.(check (list int)) "winners" [ 1 ] (Core.Connectors.elect g [ 1; 2; 3 ]);
  (* non-adjacent candidates all win *)
  Alcotest.(check (list int)) "independent all win" [ 0; 2; 4 ]
    (Core.Connectors.elect g [ 0; 2; 4 ]);
  Alcotest.(check (list int)) "empty" [] (Core.Connectors.elect g [])

let test_elect_winners_never_adjacent () =
  let rng = Wireless.Rand.create 60L in
  for _ = 1 to 20 do
    let n = 40 in
    let pts = Wireless.Deploy.uniform rng ~n ~side:100. in
    let g = Wireless.Udg.build pts ~radius:30. in
    let cands =
      List.filter (fun _ -> Wireless.Rand.bool rng) (List.init n Fun.id)
    in
    let winners = Core.Connectors.elect g cands in
    if cands <> [] then check "at least one winner" true (winners <> []);
    List.iter
      (fun w ->
        List.iter
          (fun x -> if x <> w then check "independent" false (G.has_edge g w x))
          winners)
      winners
  done

(* ---------------- two-hop candidates ---------------- *)

let test_candidates_two_hop () =
  (* path 0-1-2: dominators 0 and 2, dominatee 1 is the unique
     candidate *)
  let g = path 3 in
  let roles = Core.Mis.compute g in
  Alcotest.(check (list int)) "candidate" [ 1 ]
    (Core.Connectors.candidates_two_hop g roles 0 2)

(* ---------------- find on crafted graphs ---------------- *)

let test_find_path3 () =
  let g = path 3 in
  let roles = Core.Mis.compute g in
  let r = Core.Connectors.find g roles in
  check "1 is connector" true r.Core.Connectors.connector.(1);
  Alcotest.(check (list (pair int int)))
    "edges" [ (0, 1); (1, 2) ] r.Core.Connectors.cds_edges;
  Alcotest.(check (list (pair int int)))
    "two-hop pair" [ (0, 2) ] r.Core.Connectors.two_hop_pairs;
  Alcotest.(check (list (pair int int)))
    "no three-hop pairs" [] r.Core.Connectors.three_hop_pairs

let test_find_path4_three_hop () =
  (* path 0-1-2-3: dominators 0, 2... greedy MIS on path4 = {0, 2};
     no pair at 3 hops among dominators.  Use 0-1-2-3 with roles
     {0,3} dominators?  Greedy gives 0 then 2.  For a genuine 3-hop
     pair use a 6-path: dominators 0, 2, 4 — consecutive ones are two
     hops apart.  A clean 3-hop case needs a crafted graph: two stars
     joined by an edge between leaves. *)
  let g =
    G.of_edges 6 [ (0, 2); (2, 3); (3, 1); (0, 4); (1, 5) ]
    (* dominators 0 and 1 (smallest ids, non-adjacent); 2 dominatee of
       0; 3 dominatee of 1; d(0,1) = 3 via 0-2-3-1 *)
  in
  let roles = Core.Mis.compute g in
  check "0 dominator" true (roles.(0) = Core.Mis.Dominator);
  check "1 dominator" true (roles.(1) = Core.Mis.Dominator);
  check "2 dominatee" true (roles.(2) = Core.Mis.Dominatee);
  let r = Core.Connectors.find g roles in
  check "2 connector" true r.Core.Connectors.connector.(2);
  check "3 connector" true r.Core.Connectors.connector.(3);
  check "chain edges" true
    (List.mem (0, 2) r.Core.Connectors.cds_edges
    && List.mem (2, 3) r.Core.Connectors.cds_edges
    && List.mem (1, 3) r.Core.Connectors.cds_edges)

let test_find_skips_joined_pairs () =
  (* diamond: dominators 0 and 1 share the common dominatee 2 (two
     hops); node 3 also links them but the three-hop stage must not
     fire because a common dominatee exists *)
  let g = G.of_edges 5 [ (0, 2); (2, 1); (0, 3); (3, 4); (4, 1) ] in
  let roles = Core.Mis.compute g in
  let r = Core.Connectors.find g roles in
  check "common dominatee elected" true r.Core.Connectors.connector.(2);
  Alcotest.(check (list (pair int int)))
    "no 3-hop pairs for (0,1)" []
    (List.filter
       (fun (a, b) -> (a = 0 && b = 1) || (a = 1 && b = 0))
       r.Core.Connectors.three_hop_pairs)

(* ---------------- CDS properties on random instances ---------------- *)

let backbone_connected (cds : Core.Cds.t) =
  Netgraph.Components.connected_within cds.Core.Cds.cds
    (Core.Cds.backbone_nodes cds)

let test_cds_connectivity_random () =
  for seed = 70 to 79 do
    let _, udg = random_instance (Int64.of_int seed) 80 200. 50. in
    let cds = Core.Cds.of_udg udg in
    check "CDS connects the backbone" true (backbone_connected cds);
    check "CDS' spans everything" true
      (Netgraph.Components.is_connected cds.Core.Cds.cds');
    check "ICDS' spans everything" true
      (Netgraph.Components.is_connected cds.Core.Cds.icds')
  done

let test_structure_inclusions () =
  let _, udg = random_instance 80L 80 200. 50. in
  let cds = Core.Cds.of_udg udg in
  check "CDS ⊆ ICDS" true (G.is_subgraph cds.Core.Cds.cds cds.Core.Cds.icds);
  check "CDS ⊆ CDS'" true (G.is_subgraph cds.Core.Cds.cds cds.Core.Cds.cds');
  check "CDS' ⊆ ICDS'" true (G.is_subgraph cds.Core.Cds.cds' cds.Core.Cds.icds');
  check "ICDS ⊆ UDG" true (G.is_subgraph cds.Core.Cds.icds udg);
  check "ICDS' ⊆ UDG" true (G.is_subgraph cds.Core.Cds.icds' udg)

let test_cds_edges_touch_backbone_only () =
  let _, udg = random_instance 81L 70 200. 50. in
  let cds = Core.Cds.of_udg udg in
  G.iter_edges cds.Core.Cds.cds (fun u v ->
      check "backbone endpoints" true
        (cds.Core.Cds.backbone.(u) && cds.Core.Cds.backbone.(v)))

let test_icds_is_induced () =
  let _, udg = random_instance 82L 70 200. 50. in
  let cds = Core.Cds.of_udg udg in
  G.iter_edges udg (fun u v ->
      let both = cds.Core.Cds.backbone.(u) && cds.Core.Cds.backbone.(v) in
      check "induced" true (G.has_edge cds.Core.Cds.icds u v = both))

let test_cds'_adds_exactly_dominatee_links () =
  let _, udg = random_instance 83L 70 200. 50. in
  let cds = Core.Cds.of_udg udg in
  G.iter_edges cds.Core.Cds.cds' (fun u v ->
      let in_cds = G.has_edge cds.Core.Cds.cds u v in
      let dominatee_link =
        (cds.Core.Cds.roles.(u) = Core.Mis.Dominatee
        && cds.Core.Cds.roles.(v) = Core.Mis.Dominator)
        || (cds.Core.Cds.roles.(v) = Core.Mis.Dominatee
           && cds.Core.Cds.roles.(u) = Core.Mis.Dominator)
      in
      check "edge classified" true (in_cds || dominatee_link))

let test_dominator_of () =
  (* star: 0 dominates 1 and 2; no connectors, so the leaves are pure
     dominatees *)
  let g = G.of_edges 3 [ (0, 1); (0, 2) ] in
  let cds = Core.Cds.of_udg g in
  checki "dominatee routes to dominator" 0 (Core.Cds.dominator_of cds g 1);
  checki "backbone node is its own" 0 (Core.Cds.dominator_of cds g 0);
  (* on a path, the middle node is a connector and so its own gateway *)
  let cds3 = Core.Cds.of_udg (path 3) in
  checki "connector is its own" 1 (Core.Cds.dominator_of cds3 (path 3) 1)

let test_backbone_nodes () =
  let g = path 3 in
  let cds = Core.Cds.of_udg g in
  Alcotest.(check (list int)) "all three on path3" [ 0; 1; 2 ]
    (Core.Cds.backbone_nodes cds)

(* Lemma 4 / Lemma 8: backbone degrees bounded by a constant
   independent of n.  We check a generous numeric bound across
   densities: the paper's constants are large, but empirically CDS
   degrees stay small. *)
let test_bounded_backbone_degree () =
  for seed = 90 to 94 do
    let _, udg = random_instance (Int64.of_int seed) 120 200. 60. in
    let cds = Core.Cds.of_udg udg in
    let dcds = Netgraph.Metrics.degree_stats cds.Core.Cds.cds in
    let dicds = Netgraph.Metrics.degree_stats cds.Core.Cds.icds in
    check "CDS degree bounded" true (dcds.Netgraph.Metrics.deg_max <= 30);
    check "ICDS degree bounded" true (dicds.Netgraph.Metrics.deg_max <= 40)
  done

(* ---------------- Alzoubi-style selection ---------------- *)

let test_alzoubi_path3 () =
  let g = path 3 in
  let roles = Core.Mis.compute g in
  let r = Core.Connectors.find_alzoubi g roles in
  check "1 is connector" true r.Core.Connectors.connector.(1);
  Alcotest.(check (list (pair int int)))
    "edges" [ (0, 1); (1, 2) ] r.Core.Connectors.cds_edges

let test_alzoubi_connectivity_random () =
  for seed = 840 to 847 do
    let _, udg = random_instance (Int64.of_int seed) 80 200. 50. in
    let roles = Core.Mis.compute udg in
    let r = Core.Connectors.find_alzoubi udg roles in
    let cds = Core.Cds.build udg roles r in
    check "CDS connects the backbone" true (backbone_connected cds);
    check "CDS' spans" true
      (Netgraph.Components.is_connected cds.Core.Cds.cds')
  done

let test_alzoubi_leaner_than_elections () =
  (* one path per direction must never use more edges than the
     multi-gateway elections *)
  let total_a = ref 0 and total_e = ref 0 in
  for seed = 850 to 854 do
    let _, udg = random_instance (Int64.of_int seed) 80 200. 50. in
    let roles = Core.Mis.compute udg in
    let a = Core.Connectors.find_alzoubi udg roles in
    let e = Core.Connectors.find udg roles in
    total_a := !total_a + List.length a.Core.Connectors.cds_edges;
    total_e := !total_e + List.length e.Core.Connectors.cds_edges
  done;
  check
    (Printf.sprintf "alzoubi edges (%d) <= election edges (%d)" !total_a
       !total_e)
    true (!total_a <= !total_e)

(* ---------------- Baker-Ephremides selection ---------------- *)

let test_baker_path3_highest_id () =
  (* overlapping clusters 0 and 2 share dominatee 1: it is the only
     (hence highest-ID) candidate *)
  let g = path 3 in
  let roles = Core.Mis.compute g in
  let r = Core.Connectors.find_baker g roles in
  check "1 gateway" true r.Core.Connectors.connector.(1);
  Alcotest.(check (list (pair int int)))
    "edges" [ (0, 1); (1, 2) ] r.Core.Connectors.cds_edges

let test_baker_picks_highest () =
  (* dominators 0 and 1 with two common dominatees 2 and 3: Baker's
     rule picks 3 (highest), the paper's election picks 2 (lowest) *)
  let g = G.of_edges 4 [ (0, 2); (0, 3); (1, 2); (1, 3) ] in
  let roles = Core.Mis.compute g in
  let baker = Core.Connectors.find_baker g roles in
  let paper = Core.Connectors.find g roles in
  check "baker takes 3" true baker.Core.Connectors.connector.(3);
  check "paper takes 2" true paper.Core.Connectors.connector.(2);
  (* 2 and 3 are adjacent to each other?  They are not linked here, so
     the election keeps both as local minima... check: 2 and 3 not
     adjacent means both are local minima and both get elected *)
  check "election keeps independents" true paper.Core.Connectors.connector.(3)

let test_baker_connectivity_random () =
  for seed = 870 to 875 do
    let _, udg = random_instance (Int64.of_int seed) 80 200. 50. in
    let roles = Core.Mis.compute udg in
    let r = Core.Connectors.find_baker udg roles in
    let cds = Core.Cds.build udg roles r in
    check "CDS connects the backbone" true (backbone_connected cds);
    check "CDS' spans" true
      (Netgraph.Components.is_connected cds.Core.Cds.cds')
  done

let suites =
  [
    ( "core.connectors",
      [
        Alcotest.test_case "elect local minima" `Quick test_elect_local_minima;
        Alcotest.test_case "winners never adjacent" `Quick
          test_elect_winners_never_adjacent;
        Alcotest.test_case "two-hop candidates" `Quick
          test_candidates_two_hop;
        Alcotest.test_case "path-3 single connector" `Quick test_find_path3;
        Alcotest.test_case "three-hop chain" `Quick test_find_path4_three_hop;
        Alcotest.test_case "skips already-joined pairs" `Quick
          test_find_skips_joined_pairs;
        Alcotest.test_case "alzoubi: path-3" `Quick test_alzoubi_path3;
        Alcotest.test_case "alzoubi: connectivity" `Quick
          test_alzoubi_connectivity_random;
        Alcotest.test_case "alzoubi: leaner" `Quick
          test_alzoubi_leaner_than_elections;
        Alcotest.test_case "baker: path-3" `Quick test_baker_path3_highest_id;
        Alcotest.test_case "baker: highest-ID rule" `Quick
          test_baker_picks_highest;
        Alcotest.test_case "baker: connectivity" `Quick
          test_baker_connectivity_random;
      ] );
    ( "core.cds",
      [
        Alcotest.test_case "connectivity (random)" `Quick
          test_cds_connectivity_random;
        Alcotest.test_case "structure inclusions" `Quick
          test_structure_inclusions;
        Alcotest.test_case "CDS edges touch backbone" `Quick
          test_cds_edges_touch_backbone_only;
        Alcotest.test_case "ICDS is induced" `Quick test_icds_is_induced;
        Alcotest.test_case "CDS' = CDS + dominatee links" `Quick
          test_cds'_adds_exactly_dominatee_links;
        Alcotest.test_case "dominator_of" `Quick test_dominator_of;
        Alcotest.test_case "backbone nodes" `Quick test_backbone_nodes;
        Alcotest.test_case "bounded backbone degree" `Quick
          test_bounded_backbone_degree;
      ] );
  ]
