(* Wireless model: deterministic RNG, deployments, UDG, proximity
   baselines. *)

module P = Geometry.Point
module G = Netgraph.Graph
module R = Wireless.Rand

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- Rand ---------------- *)

let test_rand_deterministic () =
  let a = R.create 42L and b = R.create 42L in
  for _ = 1 to 100 do
    check "same stream" true (R.bits64 a = R.bits64 b)
  done

let test_rand_seeds_differ () =
  let a = R.create 1L and b = R.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if R.bits64 a = R.bits64 b then incr same
  done;
  checki "different streams" 0 !same

let test_rand_float_range () =
  let rng = R.create 7L in
  for _ = 1 to 1000 do
    let x = R.float rng 10. in
    check "in range" true (x >= 0. && x < 10.)
  done;
  check "bad bound" true
    (try
       ignore (R.float rng 0.);
       false
     with Invalid_argument _ -> true)

let test_rand_int_range_and_coverage () =
  let rng = R.create 8L in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    let x = R.int rng 10 in
    check "in range" true (x >= 0 && x < 10);
    seen.(x) <- true
  done;
  check "all values hit" true (Array.for_all Fun.id seen)

let test_rand_split_independent () =
  let parent = R.create 5L in
  let child = R.split parent in
  let c1 = R.bits64 child in
  (* reconstructing: the same parent sequence yields the same child *)
  let parent2 = R.create 5L in
  let child2 = R.split parent2 in
  check "split deterministic" true (c1 = R.bits64 child2)

let test_rand_gaussian_moments () =
  let rng = R.create 77L in
  let n = 20000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let x = R.gaussian rng in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check "mean ~ 0" true (Float.abs mean < 0.05);
  check "var ~ 1" true (Float.abs (var -. 1.) < 0.1)

let test_rand_shuffle_permutation () =
  let rng = R.create 3L in
  let arr = Array.init 50 (fun i -> i) in
  R.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check "is permutation" true (sorted = Array.init 50 (fun i -> i));
  check "actually shuffled" true (arr <> Array.init 50 (fun i -> i))

(* ---------------- Deploy ---------------- *)

let test_uniform_bounds () =
  let rng = R.create 9L in
  let pts = Wireless.Deploy.uniform rng ~n:500 ~side:100. in
  checki "count" 500 (Array.length pts);
  Array.iter
    (fun (q : P.t) ->
      check "in square" true (q.x >= 0. && q.x < 100. && q.y >= 0. && q.y < 100.))
    pts

let test_perturbed_grid () =
  let rng = R.create 10L in
  let pts = Wireless.Deploy.perturbed_grid rng ~n:49 ~side:70. ~jitter:2. in
  checki "count" 49 (Array.length pts);
  (* grid spacing 10 with jitter 2: nearest neighbor at least 10-4=6 *)
  let min_d = ref infinity in
  for i = 0 to 48 do
    for j = i + 1 to 48 do
      min_d := Float.min !min_d (P.dist pts.(i) pts.(j))
    done
  done;
  check "spacing respected" true (!min_d >= 6.)

let test_clustered () =
  let rng = R.create 11L in
  let pts =
    Wireless.Deploy.clustered rng ~n:200 ~side:100. ~clusters:3 ~spread:2.
  in
  checki "count" 200 (Array.length pts);
  Array.iter
    (fun (q : P.t) ->
      check "clamped" true (q.x >= 0. && q.x <= 100. && q.y >= 0. && q.y <= 100.))
    pts;
  check "bad clusters" true
    (try
       ignore (Wireless.Deploy.clustered rng ~n:5 ~side:1. ~clusters:0 ~spread:1.);
       false
     with Invalid_argument _ -> true)

let test_connected_uniform () =
  let rng = R.create 12L in
  let pts, attempts =
    Wireless.Deploy.connected_uniform rng ~n:60 ~side:200. ~radius:60.
      ~max_attempts:1000
  in
  check "attempts positive" true (attempts >= 1);
  let g = Wireless.Udg.build pts ~radius:60. in
  check "connected" true (Netgraph.Components.is_connected g)

let test_connected_uniform_impossible () =
  let rng = R.create 13L in
  check "gives up" true
    (try
       ignore
         (Wireless.Deploy.connected_uniform rng ~n:50 ~side:1000. ~radius:1.
            ~max_attempts:3);
       false
     with Failure _ -> true)

(* ---------------- UDG ---------------- *)

let test_udg_matches_definition () =
  let rng = R.create 14L in
  for _ = 1 to 10 do
    let pts = Wireless.Deploy.uniform rng ~n:80 ~side:100. in
    let g = Wireless.Udg.build pts ~radius:25. in
    check "is udg" true (Wireless.Udg.is_udg pts ~radius:25. g)
  done

let test_udg_small () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 2.5 0. |] in
  let g = Wireless.Udg.build pts ~radius:1.5 in
  check "0-1" true (G.has_edge g 0 1);
  check "1-2" true (G.has_edge g 1 2);
  check "0-2 too far" false (G.has_edge g 0 2);
  check "bad radius" true
    (try
       ignore (Wireless.Udg.build pts ~radius:0.);
       false
     with Invalid_argument _ -> true)

let test_udg_boundary_inclusive () =
  let pts = [| P.make 0. 0.; P.make 1. 0. |] in
  let g = Wireless.Udg.build pts ~radius:1. in
  check "exactly at radius linked" true (G.has_edge g 0 1)

let test_neighborhood () =
  let pts = Array.init 5 (fun i -> P.make (float_of_int i) 0.) in
  let g = Wireless.Udg.build pts ~radius:1. in
  Alcotest.(check (list int))
    "N1(2)" [ 1; 2; 3 ]
    (Wireless.Udg.neighborhood g 2 ~hops:1);
  Alcotest.(check (list int))
    "N2(0)" [ 0; 1; 2 ]
    (Wireless.Udg.neighborhood g 0 ~hops:2)

(* ---------------- Proximity ---------------- *)

let brute_rng pts udg =
  let n = Array.length pts in
  let g = G.create n in
  G.iter_edges udg (fun u v ->
      let blocked = ref false in
      for w = 0 to n - 1 do
        if w <> u && w <> v && Geometry.Circle.in_lune pts.(u) pts.(v) pts.(w)
        then blocked := true
      done;
      if not !blocked then G.add_edge g u v);
  g

let brute_gabriel pts udg =
  let n = Array.length pts in
  let g = G.create n in
  G.iter_edges udg (fun u v ->
      let blocked = ref false in
      for w = 0 to n - 1 do
        if
          w <> u && w <> v
          && Geometry.Circle.in_diametral pts.(u) pts.(v) pts.(w)
        then blocked := true
      done;
      if not !blocked then G.add_edge g u v);
  g

let random_instance seed n side radius =
  let rng = R.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side ~radius ~max_attempts:1000
  in
  let udg = Wireless.Udg.build pts ~radius in
  (pts, udg)

let test_rng_graph_matches_bruteforce () =
  let pts, udg = random_instance 20L 70 200. 60. in
  let fast = Wireless.Proximity.rng_graph udg pts in
  check "matches brute force" true (G.equal fast (brute_rng pts udg))

let test_gabriel_matches_bruteforce () =
  let pts, udg = random_instance 21L 70 200. 60. in
  let fast = Wireless.Proximity.gabriel_graph udg pts in
  check "matches brute force" true (G.equal fast (brute_gabriel pts udg))

let test_rng_subset_gabriel_subset_udg () =
  let pts, udg = random_instance 22L 80 200. 60. in
  let rng_g = Wireless.Proximity.rng_graph udg pts in
  let gg = Wireless.Proximity.gabriel_graph udg pts in
  check "RNG ⊆ GG" true (G.is_subgraph rng_g gg);
  check "GG ⊆ UDG" true (G.is_subgraph gg udg)

let test_rng_gabriel_connected () =
  (* both contain the Euclidean MST of the UDG, hence stay connected *)
  for seed = 30 to 34 do
    let pts, udg = random_instance (Int64.of_int seed) 60 200. 60. in
    let rng_g = Wireless.Proximity.rng_graph udg pts in
    let gg = Wireless.Proximity.gabriel_graph udg pts in
    check "RNG connected" true (Netgraph.Components.is_connected rng_g);
    check "GG connected" true (Netgraph.Components.is_connected gg)
  done

let test_gabriel_planar () =
  for seed = 40 to 44 do
    let pts, udg = random_instance (Int64.of_int seed) 60 200. 60. in
    let gg = Wireless.Proximity.gabriel_graph udg pts in
    check "GG planar" true (Netgraph.Planarity.is_planar gg pts)
  done

let test_yao_graph () =
  let pts, udg = random_instance 23L 80 200. 60. in
  let yao = Wireless.Proximity.yao_graph udg pts ~cones:6 in
  check "Yao ⊆ UDG" true (G.is_subgraph yao udg);
  check "Yao connected" true (Netgraph.Components.is_connected yao);
  (* out-degree bound: at most [cones] choices per node, so the graph
     has at most cones * n edges *)
  check "sparse" true
    (G.edge_count yao <= 6 * G.node_count yao);
  check "bad cones" true
    (try
       ignore (Wireless.Proximity.yao_graph udg pts ~cones:0);
       false
     with Invalid_argument _ -> true)

let test_yao_small_cone_selection () =
  (* node 0 with two neighbors in the same cone keeps only the
     nearest *)
  let pts = [| P.make 0. 0.; P.make 1. 0.1; P.make 2. 0.2 |] in
  let udg = Wireless.Udg.build pts ~radius:3. in
  let yao = Wireless.Proximity.yao_graph udg pts ~cones:4 in
  check "keeps nearest" true (G.has_edge yao 0 1);
  (* 0-2 may exist only due to 2's own cone choice toward 0; 2's
     nearest in that cone is 1, so 0-2 must be absent *)
  check "drops farther" false (G.has_edge yao 0 2)

let test_udel () =
  let pts, udg = random_instance 24L 80 200. 60. in
  let udel = Wireless.Proximity.udel pts ~radius:60. in
  check "UDel ⊆ UDG" true (G.is_subgraph udel udg);
  check "UDel planar" true (Netgraph.Planarity.is_planar udel pts);
  check "UDel connected" true (Netgraph.Components.is_connected udel);
  let gg = Wireless.Proximity.gabriel_graph udg pts in
  check "GG ⊆ UDel" true (G.is_subgraph gg udel)

(* ---------------- quasi UDG ---------------- *)

let test_quasi_degenerates_to_udg () =
  let rng = R.create 980L in
  let pts = Wireless.Deploy.uniform rng ~n:60 ~side:100. in
  let q = Wireless.Udg.build_quasi (R.create 1L) pts ~r_min:30. ~r_max:30. in
  check "r_min = r_max is the UDG" true
    (G.equal q (Wireless.Udg.build pts ~radius:30.))

let test_quasi_sandwich () =
  let rng = R.create 981L in
  let pts = Wireless.Deploy.uniform rng ~n:80 ~side:150. in
  let q = Wireless.Udg.build_quasi (R.create 2L) pts ~r_min:20. ~r_max:40. in
  let lower = Wireless.Udg.build pts ~radius:20. in
  let upper = Wireless.Udg.build pts ~radius:40. in
  check "UDG(r_min) ⊆ quasi" true (G.is_subgraph lower q);
  check "quasi ⊆ UDG(r_max)" true (G.is_subgraph q upper)

let test_quasi_deterministic_by_seed () =
  let rng = R.create 982L in
  let pts = Wireless.Deploy.uniform rng ~n:50 ~side:100. in
  let q1 = Wireless.Udg.build_quasi (R.create 7L) pts ~r_min:15. ~r_max:35. in
  let q2 = Wireless.Udg.build_quasi (R.create 7L) pts ~r_min:15. ~r_max:35. in
  check "same seed same graph" true (G.equal q1 q2)

let test_quasi_invalid () =
  let pts = [| P.make 0. 0.; P.make 1. 0. |] in
  check "bad range" true
    (try
       ignore (Wireless.Udg.build_quasi (R.create 1L) pts ~r_min:5. ~r_max:2.);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "wireless.rand",
      [
        Alcotest.test_case "deterministic" `Quick test_rand_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rand_seeds_differ;
        Alcotest.test_case "float range" `Quick test_rand_float_range;
        Alcotest.test_case "int range/coverage" `Quick
          test_rand_int_range_and_coverage;
        Alcotest.test_case "split" `Quick test_rand_split_independent;
        Alcotest.test_case "gaussian moments" `Quick test_rand_gaussian_moments;
        Alcotest.test_case "shuffle" `Quick test_rand_shuffle_permutation;
      ] );
    ( "wireless.deploy",
      [
        Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
        Alcotest.test_case "perturbed grid" `Quick test_perturbed_grid;
        Alcotest.test_case "clustered" `Quick test_clustered;
        Alcotest.test_case "connected redraw" `Quick test_connected_uniform;
        Alcotest.test_case "gives up eventually" `Quick
          test_connected_uniform_impossible;
      ] );
    ( "wireless.udg",
      [
        Alcotest.test_case "matches definition" `Quick
          test_udg_matches_definition;
        Alcotest.test_case "small cases" `Quick test_udg_small;
        Alcotest.test_case "boundary inclusive" `Quick
          test_udg_boundary_inclusive;
        Alcotest.test_case "k-hop neighborhood" `Quick test_neighborhood;
        Alcotest.test_case "quasi: degenerate" `Quick
          test_quasi_degenerates_to_udg;
        Alcotest.test_case "quasi: sandwich" `Quick test_quasi_sandwich;
        Alcotest.test_case "quasi: deterministic" `Quick
          test_quasi_deterministic_by_seed;
        Alcotest.test_case "quasi: invalid range" `Quick test_quasi_invalid;
      ] );
    ( "wireless.proximity",
      [
        Alcotest.test_case "RNG = brute force" `Quick
          test_rng_graph_matches_bruteforce;
        Alcotest.test_case "GG = brute force" `Quick
          test_gabriel_matches_bruteforce;
        Alcotest.test_case "RNG ⊆ GG ⊆ UDG" `Quick
          test_rng_subset_gabriel_subset_udg;
        Alcotest.test_case "RNG/GG connected" `Quick test_rng_gabriel_connected;
        Alcotest.test_case "GG planar" `Quick test_gabriel_planar;
        Alcotest.test_case "Yao graph" `Quick test_yao_graph;
        Alcotest.test_case "Yao cone selection" `Quick
          test_yao_small_cone_selection;
        Alcotest.test_case "UDel" `Quick test_udel;
      ] );
  ]
