(* Unit tests for the geometry substrate: points, predicates,
   segments, circles, hulls, grid. *)

module P = Geometry.Point
module Pred = Geometry.Predicates
module Seg = Geometry.Segment
module C = Geometry.Circle

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let p = P.make

(* ---------------- Point ---------------- *)

let test_point_arith () =
  let a = p 1. 2. and b = p 3. (-1.) in
  check "add" true (P.equal (P.add a b) (p 4. 1.));
  check "sub" true (P.equal (P.sub a b) (p (-2.) 3.));
  check "scale" true (P.equal (P.scale 2. a) (p 2. 4.));
  check "neg" true (P.equal (P.neg a) (p (-1.) (-2.)));
  checkf "dot" 1. (P.dot a b);
  checkf "cross" (-7.) (P.cross a b)

let test_point_dist () =
  checkf "dist 3-4-5" 5. (P.dist (p 0. 0.) (p 3. 4.));
  checkf "dist2" 25. (P.dist2 (p 0. 0.) (p 3. 4.));
  checkf "norm" (sqrt 2.) (P.norm (p 1. 1.));
  check "midpoint" true (P.equal (P.midpoint (p 0. 0.) (p 2. 4.)) (p 1. 2.))

let test_point_lerp () =
  check "lerp 0" true (P.equal (P.lerp (p 1. 1.) (p 3. 5.) 0.) (p 1. 1.));
  check "lerp 1" true (P.equal (P.lerp (p 1. 1.) (p 3. 5.) 1.) (p 3. 5.));
  check "lerp half" true (P.equal (P.lerp (p 1. 1.) (p 3. 5.) 0.5) (p 2. 3.))

let test_point_angle () =
  checkf "right angle" (Float.pi /. 2.) (P.angle (p 1. 0.) (p 0. 0.) (p 0. 1.));
  checkf "straight" Float.pi (P.angle (p (-1.) 0.) (p 0. 0.) (p 1. 0.));
  checkf "degenerate-same-ray" 0. (P.angle (p 1. 0.) (p 0. 0.) (p 2. 0.))

let test_point_rotate () =
  let q = P.rotate (Float.pi /. 2.) (p 1. 0.) in
  check "rotate 90" true (P.close q (p 0. 1.));
  let r = P.rotate_about (p 1. 1.) Float.pi (p 2. 1.) in
  check "rotate about" true (P.close r (p 0. 1.))

let test_point_compare () =
  check "lex x" true (P.compare (p 0. 9.) (p 1. 0.) < 0);
  check "lex y" true (P.compare (p 1. 0.) (p 1. 1.) < 0);
  check "eq" true (P.compare (p 1. 1.) (p 1. 1.) = 0);
  check "close eps" true (P.close ~eps:1e-3 (p 0. 0.) (p 1e-4 (-1e-4)));
  check "not close" false (P.close ~eps:1e-6 (p 0. 0.) (p 1e-4 0.))

(* ---------------- Predicates ---------------- *)

let test_orient_basic () =
  check "ccw" true (Pred.orient2d (p 0. 0.) (p 1. 0.) (p 0. 1.) = Pred.Ccw);
  check "cw" true (Pred.orient2d (p 0. 0.) (p 0. 1.) (p 1. 0.) = Pred.Cw);
  check "collinear" true
    (Pred.orient2d (p 0. 0.) (p 1. 1.) (p 2. 2.) = Pred.Collinear)

let test_orient_degenerate_scale () =
  (* near-collinear points separated by tiny perturbations: the exact
     fallback must get the sign right where the float determinant
     underflows into noise *)
  let a = p 0.1 0.1 and b = p 0.3 0.3 in
  let c_above = p 0.2 (0.2 +. 1e-15) in
  let c_below = p 0.2 (0.2 -. 1e-15) in
  let c_on = p 0.2 0.2 in
  check "tiny above" true (Pred.orient2d a b c_above = Pred.Ccw);
  check "tiny below" true (Pred.orient2d a b c_below = Pred.Cw);
  check "exactly on" true (Pred.orient2d a b c_on = Pred.Collinear)

let test_orient_translation_invariance () =
  (* orientation decisions survive a large common offset *)
  let t = 1e6 in
  let sh q = p (q.P.x +. t) (q.P.y +. t) in
  let a = p 0. 0. and b = p 1. 0. and c = p 0.5 1e-9 in
  check "shifted still ccw" true
    (Pred.orient2d (sh a) (sh b) (sh c) = Pred.Ccw)

let test_incircle_basic () =
  let a = p 0. 0. and b = p 2. 0. and c = p 0. 2. in
  check "center inside" true (Pred.incircle a b c (p 1. 1.));
  check "far outside" false (Pred.incircle a b c (p 10. 10.));
  (* (2,2) is on the circumcircle of this right triangle *)
  check "cocircular boundary" false (Pred.incircle a b c (p 2. 2.))

let test_incircle_orientation_invariance () =
  let a = p 0. 0. and b = p 2. 0. and c = p 0. 2. in
  check "cw triangle same answer" true (Pred.incircle a c b (p 1. 1.));
  check "cw triangle same answer out" false (Pred.incircle a c b (p 5. 5.))

let test_incircle_near_cocircular () =
  (* unit circle through 4 near-cocircular points: d just inside /
     just outside *)
  let a = p 1. 0. and b = p 0. 1. and c = p (-1.) 0. in
  check "just inside" true (Pred.incircle a b c (p 0. (-0.999999999999)));
  check "just outside" false (Pred.incircle a b c (p 0. (-1.000000000001)))

let test_between () =
  check "midpoint between" true (Pred.between (p 0. 0.) (p 2. 2.) (p 1. 1.));
  check "endpoint counts" true (Pred.between (p 0. 0.) (p 2. 2.) (p 0. 0.));
  check "beyond" false (Pred.between (p 0. 0.) (p 2. 2.) (p 3. 3.));
  check "off line" false (Pred.between (p 0. 0.) (p 2. 2.) (p 1. 1.5))

(* ---------------- Segment ---------------- *)

let seg a b = Seg.make a b

let test_segment_proper_cross () =
  let s1 = seg (p 0. 0.) (p 2. 2.) and s2 = seg (p 0. 2.) (p 2. 0.) in
  check "X crossing" true (Seg.properly_intersect s1 s2);
  let s3 = seg (p 0. 0.) (p 1. 0.) and s4 = seg (p 2. 0.) (p 3. 0.) in
  check "disjoint collinear" false (Seg.properly_intersect s3 s4)

let test_segment_touch_not_proper () =
  let s1 = seg (p 0. 0.) (p 2. 0.) in
  (* shares endpoint *)
  check "shared endpoint" false
    (Seg.properly_intersect s1 (seg (p 2. 0.) (p 3. 1.)));
  (* T-junction: endpoint on interior *)
  check "t-junction" false (Seg.properly_intersect s1 (seg (p 1. 0.) (p 1. 1.)));
  (* but both count as closed intersection *)
  check "shared endpoint closed" true (Seg.intersect s1 (seg (p 2. 0.) (p 3. 1.)));
  check "t-junction closed" true (Seg.intersect s1 (seg (p 1. 0.) (p 1. 1.)))

let test_segment_intersection_point () =
  let s1 = seg (p 0. 0.) (p 2. 2.) and s2 = seg (p 0. 2.) (p 2. 0.) in
  (match Seg.intersection_point s1 s2 with
  | Some q -> check "crossing at center" true (P.close q (p 1. 1.))
  | None -> Alcotest.fail "expected intersection");
  check "parallel none" true
    (Seg.intersection_point s1 (seg (p 0. 1.) (p 2. 3.)) = None)

let test_segment_dist () =
  let s = seg (p 0. 0.) (p 2. 0.) in
  checkf "above middle" 1. (Seg.dist_to_point s (p 1. 1.));
  checkf "beyond end" (sqrt 2.) (Seg.dist_to_point s (p 3. 1.));
  checkf "on segment" 0. (Seg.dist_to_point s (p 0.5 0.));
  checkf "degenerate segment" 5. (Seg.dist_to_point (seg (p 0. 0.) (p 0. 0.)) (p 3. 4.))

let test_segment_length () =
  checkf "length" (sqrt 8.) (Seg.length (seg (p 0. 0.) (p 2. 2.)));
  check "midpoint" true (P.equal (Seg.midpoint (seg (p 0. 0.) (p 2. 2.))) (p 1. 1.))

(* ---------------- Circle ---------------- *)

let test_circumcircle () =
  (match C.circumcircle (p 0. 0.) (p 2. 0.) (p 0. 2.) with
  | Some c ->
    check "center" true (P.close c.C.center (p 1. 1.));
    checkf "radius" (sqrt 2.) c.C.radius
  | None -> Alcotest.fail "expected circumcircle");
  check "collinear none" true
    (C.circumcircle (p 0. 0.) (p 1. 1.) (p 2. 2.) = None)

let test_diametral () =
  let c = C.diametral (p 0. 0.) (p 2. 0.) in
  check "center" true (P.close c.C.center (p 1. 0.));
  checkf "radius" 1. c.C.radius;
  check "in (angle criterion)" true (C.in_diametral (p 0. 0.) (p 2. 0.) (p 1. 0.5));
  check "out" false (C.in_diametral (p 0. 0.) (p 2. 0.) (p 2. 1.));
  (* boundary: right angle exactly on the circle *)
  check "boundary excluded" false (C.in_diametral (p 0. 0.) (p 2. 0.) (p 1. 1.));
  check "endpoint excluded" false (C.in_diametral (p 0. 0.) (p 2. 0.) (p 0. 0.))

let test_lune () =
  let a = p 0. 0. and b = p 2. 0. in
  check "center of lune" true (C.in_lune a b (p 1. 0.5));
  check "near a outside" false (C.in_lune a b (p (-0.5) 0.));
  (* point at distance exactly |ab| from a: boundary, excluded *)
  check "boundary excluded" false (C.in_lune a b (p 0. 2.));
  check "endpoint excluded" false (C.in_lune a b a)

let test_circle_contains () =
  let c = C.make (p 0. 0.) 1. in
  check "inside" true (C.contains c (p 0.5 0.));
  check "boundary closed" true (C.contains c (p 1. 0.));
  check "boundary strict" false (C.contains ~strict:true c (p 1. 0.));
  check "outside" false (C.contains c (p 1.1 0.));
  check "intersects" true (C.intersects c (C.make (p 1.5 0.) 1.));
  check "disjoint" false (C.intersects c (C.make (p 3. 0.) 1.))

(* ---------------- Hull ---------------- *)

let test_hull_square () =
  let pts =
    [ p 0. 0.; p 1. 0.; p 1. 1.; p 0. 1.; p 0.5 0.5; p 0.2 0.8 ]
  in
  let h = Geometry.Hull.convex_hull pts in
  Alcotest.(check int) "4 corners" 4 (List.length h);
  check "ccw" true (Geometry.Hull.is_convex h);
  check "interior" true (Geometry.Hull.contains_point h (p 0.5 0.5));
  check "exterior" false (Geometry.Hull.contains_point h (p 1.5 0.5))

let test_hull_collinear () =
  let h = Geometry.Hull.convex_hull [ p 0. 0.; p 1. 1.; p 2. 2.; p 3. 3. ] in
  (* all collinear: extremes only *)
  Alcotest.(check int) "segment hull" 2 (List.length h)

let test_hull_duplicates () =
  let h = Geometry.Hull.convex_hull [ p 0. 0.; p 0. 0.; p 1. 0.; p 0. 1. ] in
  Alcotest.(check int) "triangle" 3 (List.length h)

let test_hull_area () =
  let square = [ p 0. 0.; p 2. 0.; p 2. 2.; p 0. 2. ] in
  checkf "ccw positive" 4. (Geometry.Hull.signed_area square);
  checkf "cw negative" (-4.) (Geometry.Hull.signed_area (List.rev square))

let test_hull_random_contains_all () =
  let rng = Wireless.Rand.create 5L in
  for _ = 1 to 20 do
    let pts =
      List.init 40 (fun _ ->
          p (Wireless.Rand.float rng 10.) (Wireless.Rand.float rng 10.))
    in
    let h = Geometry.Hull.convex_hull pts in
    check "hull is convex" true (Geometry.Hull.is_convex h);
    List.iter
      (fun q -> check "contains input" true (Geometry.Hull.contains_point h q))
      pts
  done

(* ---------------- Bbox ---------------- *)

let test_bbox () =
  let b = Geometry.Bbox.of_points [ p 1. 2.; p (-1.) 5.; p 0. 0. ] in
  checkf "width" 2. (Geometry.Bbox.width b);
  checkf "height" 5. (Geometry.Bbox.height b);
  check "contains" true (Geometry.Bbox.contains b (p 0. 3.));
  check "excludes" false (Geometry.Bbox.contains b (p 2. 3.));
  let e = Geometry.Bbox.expand 1. b in
  check "expanded contains" true (Geometry.Bbox.contains e (p 1.5 3.));
  check "empty invalid" true
    (try
       ignore (Geometry.Bbox.of_points []);
       false
     with Invalid_argument _ -> true)

(* ---------------- Grid ---------------- *)

let test_grid_neighbors () =
  let pts = [| p 0. 0.; p 1. 0.; p 5. 5.; p 1.4 0. |] in
  let g = Geometry.Grid.create ~cell_size:2. pts in
  let n0 = List.sort compare (Geometry.Grid.neighbors_within g 0 2.) in
  Alcotest.(check (list int)) "neighbors of 0" [ 1; 3 ] n0;
  let n2 = Geometry.Grid.neighbors_within g 2 2. in
  Alcotest.(check (list int)) "isolated" [] n2

let test_grid_matches_bruteforce () =
  let rng = Wireless.Rand.create 11L in
  let pts =
    Array.init 200 (fun _ ->
        p (Wireless.Rand.float rng 100.) (Wireless.Rand.float rng 100.))
  in
  let r = 12.5 in
  let g = Geometry.Grid.create ~cell_size:r pts in
  for i = 0 to 199 do
    let fast = List.sort compare (Geometry.Grid.neighbors_within g i r) in
    let slow = ref [] in
    for j = 199 downto 0 do
      if j <> i && P.dist pts.(i) pts.(j) <= r then slow := j :: !slow
    done;
    Alcotest.(check (list int)) "grid = brute force" !slow fast
  done

let test_grid_points_within () =
  let pts = [| p 0. 0.; p 3. 0.; p 6. 0.; p 20. 0. |] in
  let g = Geometry.Grid.create ~cell_size:2. pts in
  (* query radius larger than the cell size must still work *)
  let found = List.sort compare (Geometry.Grid.points_within g (p 0. 0.) 7.) in
  Alcotest.(check (list int)) "multi-ring query" [ 0; 1; 2 ] found

let test_grid_invalid () =
  check "bad cell size" true
    (try
       ignore (Geometry.Grid.create ~cell_size:0. [| p 0. 0. |]);
       false
     with Invalid_argument _ -> true);
  let g = Geometry.Grid.create ~cell_size:1. [| p 0. 0.; p 0.5 0. |] in
  check "radius above cell size" true
    (try
       ignore (Geometry.Grid.neighbors_within g 0 2.);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "geometry.point",
      [
        Alcotest.test_case "arithmetic" `Quick test_point_arith;
        Alcotest.test_case "distances" `Quick test_point_dist;
        Alcotest.test_case "lerp" `Quick test_point_lerp;
        Alcotest.test_case "angles" `Quick test_point_angle;
        Alcotest.test_case "rotation" `Quick test_point_rotate;
        Alcotest.test_case "comparison" `Quick test_point_compare;
      ] );
    ( "geometry.predicates",
      [
        Alcotest.test_case "orient basic" `Quick test_orient_basic;
        Alcotest.test_case "orient degenerate" `Quick
          test_orient_degenerate_scale;
        Alcotest.test_case "orient translated" `Quick
          test_orient_translation_invariance;
        Alcotest.test_case "incircle basic" `Quick test_incircle_basic;
        Alcotest.test_case "incircle orientation" `Quick
          test_incircle_orientation_invariance;
        Alcotest.test_case "incircle near-cocircular" `Quick
          test_incircle_near_cocircular;
        Alcotest.test_case "between" `Quick test_between;
      ] );
    ( "geometry.segment",
      [
        Alcotest.test_case "proper crossing" `Quick test_segment_proper_cross;
        Alcotest.test_case "touching is not proper" `Quick
          test_segment_touch_not_proper;
        Alcotest.test_case "intersection point" `Quick
          test_segment_intersection_point;
        Alcotest.test_case "distance to point" `Quick test_segment_dist;
        Alcotest.test_case "length/midpoint" `Quick test_segment_length;
      ] );
    ( "geometry.circle",
      [
        Alcotest.test_case "circumcircle" `Quick test_circumcircle;
        Alcotest.test_case "diametral (Gabriel) disk" `Quick test_diametral;
        Alcotest.test_case "lune (RNG) region" `Quick test_lune;
        Alcotest.test_case "containment" `Quick test_circle_contains;
      ] );
    ( "geometry.hull",
      [
        Alcotest.test_case "square" `Quick test_hull_square;
        Alcotest.test_case "collinear" `Quick test_hull_collinear;
        Alcotest.test_case "duplicates" `Quick test_hull_duplicates;
        Alcotest.test_case "signed area" `Quick test_hull_area;
        Alcotest.test_case "random containment" `Quick
          test_hull_random_contains_all;
      ] );
    ( "geometry.bbox",
      [ Alcotest.test_case "construction and queries" `Quick test_bbox ] );
    ( "geometry.grid",
      [
        Alcotest.test_case "neighbors" `Quick test_grid_neighbors;
        Alcotest.test_case "matches brute force" `Quick
          test_grid_matches_bruteforce;
        Alcotest.test_case "points within any radius" `Quick
          test_grid_points_within;
        Alcotest.test_case "invalid arguments" `Quick test_grid_invalid;
      ] );
  ]
