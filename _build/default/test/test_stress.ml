(* Stress and adversarial-degeneracy tests: exact predicates under
   cocircular/collinear inputs, the Delaunay builder on grids, the
   simulator under randomized protocols, and scale smoke tests. *)

module P = Geometry.Point
module Pred = Geometry.Predicates
module DT = Delaunay.Triangulation
module G = Netgraph.Graph
module E = Distsim.Engine

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- exact predicates under degeneracy ---------------- *)

let test_orient_grid_exactness () =
  (* every triple of a small integer grid must classify exactly *)
  let pts = ref [] in
  for x = 0 to 4 do
    for y = 0 to 4 do
      pts := P.make (float_of_int x) (float_of_int y) :: !pts
    done
  done;
  let arr = Array.of_list !pts in
  let n = Array.length arr in
  let exact a b c =
    (* integer arithmetic ground truth *)
    let xi (p : P.t) = int_of_float p.x and yi (p : P.t) = int_of_float p.y in
    let det =
      ((xi b - xi a) * (yi c - yi a)) - ((yi b - yi a) * (xi c - xi a))
    in
    if det > 0 then Pred.Ccw else if det < 0 then Pred.Cw else Pred.Collinear
  in
  let mism = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        if i <> j && j <> k && i <> k then
          if Pred.orient2d arr.(i) arr.(j) arr.(k) <> exact arr.(i) arr.(j) arr.(k)
          then incr mism
      done
    done
  done;
  checki "no misclassifications" 0 !mism

let test_incircle_grid_exactness () =
  (* integer grids make the 4x4 incircle determinant computable in
     exact 64-bit arithmetic — a self-contained ground truth for the
     exact fallback (this is the oracle that caught a real bug in the
     expansion arithmetic during development) *)
  let k = 4 in
  let pts =
    Array.init (k * k) (fun i ->
        P.make (float_of_int (i mod k)) (float_of_int (i / k)))
  in
  let xi (p : P.t) = int_of_float p.x and yi (p : P.t) = int_of_float p.y in
  let exact_inside a b c d =
    let adx = xi a - xi d and ady = yi a - yi d in
    let bdx = xi b - xi d and bdy = yi b - yi d in
    let cdx = xi c - xi d and cdy = yi c - yi d in
    let alift = (adx * adx) + (ady * ady) in
    let blift = (bdx * bdx) + (bdy * bdy) in
    let clift = (cdx * cdx) + (cdy * cdy) in
    let det =
      (alift * ((bdx * cdy) - (bdy * cdx)))
      + (blift * ((cdx * ady) - (cdy * adx)))
      + (clift * ((adx * bdy) - (ady * bdx)))
    in
    let o =
      ((xi b - xi a) * (yi c - yi a)) - ((yi b - yi a) * (xi c - xi a))
    in
    o <> 0 && det * o > 0
  in
  let n = Array.length pts in
  let mism = ref 0 in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      for c = b + 1 to n - 1 do
        for d = 0 to n - 1 do
          if d <> a && d <> b && d <> c then
            if
              Pred.incircle pts.(a) pts.(b) pts.(c) pts.(d)
              <> exact_inside pts.(a) pts.(b) pts.(c) pts.(d)
            then incr mism
        done
      done
    done
  done;
  checki "incircle exact on grid quadruples" 0 !mism

let test_incircle_translated_far () =
  (* the incircle filter must survive large common offsets where the
     naive determinant is pure cancellation noise *)
  let offsets = [ 0.; 1e3; 1e6; 1e7 ] in
  List.iter
    (fun t ->
      let p x y = P.make (x +. t) (y +. t) in
      let a = p 0. 0. and b = p 2. 0. and c = p 0. 2. in
      check "inside survives shift" true (Pred.incircle a b c (p 1. 1.));
      check "outside survives shift" false (Pred.incircle a b c (p 3. 3.));
      check "cocircular survives shift" false (Pred.incircle a b c (p 2. 2.)))
    offsets

let test_delaunay_perfect_grid () =
  (* a k x k integer grid: masses of exactly-cocircular quadruples; the
     builder must still produce a valid (if non-unique) Delaunay
     triangulation with correct counts *)
  List.iter
    (fun k ->
      let pts =
        Array.init (k * k) (fun i ->
            P.make (float_of_int (i mod k)) (float_of_int (i / k)))
      in
      let t = DT.triangulate pts in
      let tris = DT.triangles t in
      check "delaunay (non-strict)" true (DT.is_delaunay pts tris);
      (* grid hull is the boundary: 4(k-1) vertices; triangle count
         2(k-1)^2 regardless of diagonal choices *)
      checki "triangles" (2 * (k - 1) * (k - 1)) (List.length tris);
      checki "hull" (4 * (k - 1)) (List.length (DT.hull t)))
    [ 3; 5; 8 ]

let test_delaunay_two_clusters_far_apart () =
  (* extreme aspect ratio: two tight clusters separated by 1e6 *)
  let rng = Wireless.Rand.create 940L in
  let cluster cx =
    List.init 20 (fun _ ->
        P.make (cx +. Wireless.Rand.float rng 1.) (Wireless.Rand.float rng 1.))
  in
  let pts = Array.of_list (cluster 0. @ cluster 1e6) in
  let t = DT.triangulate pts in
  check "still delaunay" true (DT.is_delaunay pts (DT.triangles t))

let test_delaunay_circle_points () =
  (* many nearly-cocircular points on one circle *)
  let n = 30 in
  let pts =
    Array.init n (fun i ->
        let a = 2. *. Float.pi *. float_of_int i /. float_of_int n in
        P.make (cos a) (sin a))
  in
  let t = DT.triangulate pts in
  let tris = DT.triangles t in
  check "delaunay" true (DT.is_delaunay pts tris);
  (* all points on the hull: n-2 triangles *)
  checki "fan size" (n - 2) (List.length tris);
  checki "hull is everyone" n (List.length (DT.hull t))

(* ---------------- simulator fuzz ---------------- *)

let test_engine_random_protocols_terminate () =
  (* randomized finite-chatter protocols: every node broadcasts a
     random number of messages over its first few rounds, then goes
     quiet; the engine must always reach quiescence with exact
     counts *)
  let rng = Wireless.Rand.create 941L in
  for _ = 1 to 20 do
    let n = 2 + Wireless.Rand.int rng 30 in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Wireless.Rand.float rng 1. < 0.2 then edges := (u, v) :: !edges
      done
    done;
    let g = G.of_edges n !edges in
    let plan =
      Array.init n (fun _ -> Wireless.Rand.int rng 4 (* msgs in round 0 *))
    in
    let proto =
      {
        E.init = (fun _ _ -> 0);
        E.on_round =
          (fun ctx st inbox ->
            if ctx.E.round = 0 then
              for _ = 1 to plan.(ctx.E.me) do
                ctx.E.broadcast ()
              done;
            st + List.length inbox);
      }
    in
    let states, stats = E.run ~classify:(fun () -> "m") g proto in
    checki "sent = plan" (Array.fold_left ( + ) 0 plan) (E.total_sent stats);
    (* total receptions = sum over senders of their degree x msgs *)
    let expected_rx = ref 0 in
    Array.iteri (fun u k -> expected_rx := !expected_rx + (k * G.degree g u)) plan;
    checki "received all" !expected_rx (Array.fold_left ( + ) 0 states)
  done

(* ---------------- scale smoke ---------------- *)

let test_pipeline_scale_500 () =
  (* the Figure 11/12 workload size: one full pipeline at n = 500 *)
  let rng = Wireless.Rand.create 942L in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n:500 ~side:200. ~radius:30.
      ~max_attempts:200
  in
  let bb = Core.Backbone.build pts ~radius:30. in
  check "planar at scale" true
    (Netgraph.Planarity.is_planar bb.Core.Backbone.ldel_icds_g pts);
  check "spans at scale" true
    (Netgraph.Components.is_connected bb.Core.Backbone.ldel_icds');
  let pr = Core.Protocol.run pts ~radius:30. in
  check "protocol agrees at scale" true
    (G.equal pr.Core.Protocol.ldel_graph bb.Core.Backbone.ldel_icds_g);
  check "O(1) messages at scale" true
    (E.max_sent (Core.Protocol.ldel_stats pr) <= 120)

let suites =
  [
    ( "stress.predicates",
      [
        Alcotest.test_case "orient2d exact on grid triples" `Quick
          test_orient_grid_exactness;
        Alcotest.test_case "incircle exact on grid quadruples" `Quick
          test_incircle_grid_exactness;
        Alcotest.test_case "incircle under large offsets" `Quick
          test_incircle_translated_far;
      ] );
    ( "stress.delaunay",
      [
        Alcotest.test_case "perfect grid (cocircular)" `Quick
          test_delaunay_perfect_grid;
        Alcotest.test_case "distant clusters" `Quick
          test_delaunay_two_clusters_far_apart;
        Alcotest.test_case "points on a circle" `Quick
          test_delaunay_circle_points;
      ] );
    ( "stress.engine",
      [
        Alcotest.test_case "random protocols terminate exactly" `Quick
          test_engine_random_protocols_terminate;
      ] );
    ( "stress.scale",
      [ Alcotest.test_case "full pipeline at n=500" `Slow test_pipeline_scale_500 ] );
  ]
