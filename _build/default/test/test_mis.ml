(* Clustering: the smallest-ID maximal independent set. *)

module G = Netgraph.Graph

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let path n = G.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_path_greedy () =
  (* on a path 0-1-2-3-4 the greedy-by-id MIS is {0, 2, 4} *)
  let roles = Core.Mis.compute (path 5) in
  Alcotest.(check (list int)) "dominators" [ 0; 2; 4 ] (Core.Mis.dominators roles)

let test_star () =
  (* center 0 with leaves: 0 wins, everyone else dominated *)
  let g = G.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let roles = Core.Mis.compute g in
  Alcotest.(check (list int)) "center only" [ 0 ] (Core.Mis.dominators roles)

let test_star_center_large_id () =
  (* center has the LARGEST id: all leaves are independent and win *)
  let g = G.of_edges 5 [ (4, 0); (4, 1); (4, 2); (4, 3) ] in
  let roles = Core.Mis.compute g in
  Alcotest.(check (list int))
    "leaves win" [ 0; 1; 2; 3 ]
    (Core.Mis.dominators roles)

let test_isolated_nodes_are_dominators () =
  let roles = Core.Mis.compute (G.create 3) in
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Core.Mis.dominators roles)

let test_greedy_equivalence () =
  (* the fixpoint of the local rule equals the sequential greedy MIS *)
  let rng = Wireless.Rand.create 50L in
  for _ = 1 to 20 do
    let n = 30 + Wireless.Rand.int rng 70 in
    let pts = Wireless.Deploy.uniform rng ~n ~side:200. in
    let g = Wireless.Udg.build pts ~radius:50. in
    let roles = Core.Mis.compute g in
    let greedy = Array.make n false in
    for u = 0 to n - 1 do
      if List.for_all (fun v -> v > u || not greedy.(v)) (G.neighbors g u)
      then greedy.(u) <- true
    done;
    for u = 0 to n - 1 do
      check "same set" true (greedy.(u) = (roles.(u) = Core.Mis.Dominator))
    done
  done

let test_validators () =
  let g = path 5 in
  let roles = Core.Mis.compute g in
  check "independent" true (Core.Mis.is_independent g roles);
  check "dominating" true (Core.Mis.is_dominating g roles);
  check "maximal" true (Core.Mis.is_maximal g roles);
  (* a broken assignment: adjacent dominators *)
  let bad = Array.make 5 Core.Mis.Dominator in
  check "catches dependence" false (Core.Mis.is_independent g bad);
  let none = Array.make 5 Core.Mis.Dominatee in
  check "catches non-domination" false (Core.Mis.is_dominating g none)

let test_priority_variant () =
  (* highest-degree-first on a star with large-id center: priority
     makes the center win despite its id *)
  let g = G.of_edges 5 [ (4, 0); (4, 1); (4, 2); (4, 3) ] in
  let roles =
    Core.Mis.compute_with_priority g ~priority:(fun u -> -G.degree g u)
  in
  Alcotest.(check (list int)) "center wins" [ 4 ] (Core.Mis.dominators roles);
  check "independent" true (Core.Mis.is_independent g roles);
  check "dominating" true (Core.Mis.is_dominating g roles)

let test_dominators_of () =
  let g = path 5 in
  let roles = Core.Mis.compute g in
  Alcotest.(check (list int)) "node 1" [ 0; 2 ] (Core.Mis.dominators_of g roles 1);
  Alcotest.(check (list int)) "node 0 is dominator" []
    (Core.Mis.dominators_of g roles 0)

let test_two_hop_dominators () =
  let g = path 7 in
  (* dominators: 0 2 4 6 *)
  let roles = Core.Mis.compute g in
  Alcotest.(check (list int))
    "from node 1: dominators at distance exactly 2"
    []
    (List.filter (fun d -> d <> 0 && d <> 2) (Core.Mis.two_hop_dominators g roles 1));
  (* node 3 is adjacent to 2 and 4; two-hop dominators: none at
     exactly 2?  dist(3,0)=3, dist(3,6)=3 -> empty *)
  Alcotest.(check (list int)) "node 3" [] (Core.Mis.two_hop_dominators g roles 3);
  (* node 1: dist(1,2)=1 adjacent, dist(1,4)=3; no dominator at 2 *)
  Alcotest.(check (list int)) "node 1" [] (Core.Mis.two_hop_dominators g roles 1)

let test_two_hop_dominators_positive () =
  (* 0 - 1 - 2: dominators {0, 2}; node 0 sees 2 at distance 2?  0 is
     a dominator itself; check from the dominatee 1: both are
     adjacent.  Build a 2-hop case explicitly: square path 0-1-2 with
     2 a dominator two hops from 0 *)
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  let roles = Core.Mis.compute g in
  (* roles: 0 dominator, 1 dominatee, 2 dominator *)
  Alcotest.(check (list int))
    "dominator 0 sees 2" [ 2 ]
    (Core.Mis.two_hop_dominators g roles 0)

let test_lemma1_five_dominators_bound () =
  (* Lemma 1: a dominatee has at most 5 dominator neighbors in a UDG *)
  let rng = Wireless.Rand.create 51L in
  for _ = 1 to 20 do
    let n = 50 + Wireless.Rand.int rng 100 in
    let pts = Wireless.Deploy.uniform rng ~n ~side:150. in
    let g = Wireless.Udg.build pts ~radius:40. in
    let roles = Core.Mis.compute g in
    for u = 0 to n - 1 do
      if roles.(u) = Core.Mis.Dominatee then
        checki "at most 5"
          (min 5 (List.length (Core.Mis.dominators_of g roles u)))
          (List.length (Core.Mis.dominators_of g roles u))
    done
  done

let suites =
  [
    ( "core.mis",
      [
        Alcotest.test_case "path" `Quick test_path_greedy;
        Alcotest.test_case "star small center" `Quick test_star;
        Alcotest.test_case "star large center" `Quick
          test_star_center_large_id;
        Alcotest.test_case "isolated nodes" `Quick
          test_isolated_nodes_are_dominators;
        Alcotest.test_case "equals sequential greedy" `Quick
          test_greedy_equivalence;
        Alcotest.test_case "validators" `Quick test_validators;
        Alcotest.test_case "priority variant" `Quick test_priority_variant;
        Alcotest.test_case "dominators_of" `Quick test_dominators_of;
        Alcotest.test_case "two-hop dominators (path)" `Quick
          test_two_hop_dominators;
        Alcotest.test_case "two-hop dominators (positive)" `Quick
          test_two_hop_dominators_positive;
        Alcotest.test_case "Lemma 1: ≤5 dominators per dominatee" `Quick
          test_lemma1_five_dominators_bound;
      ] );
  ]
