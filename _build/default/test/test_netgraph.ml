(* Unit tests for the graph substrate: structure, traversal,
   components, metrics, planarity. *)

module G = Netgraph.Graph
module T = Netgraph.Traversal
module P = Geometry.Point

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---------------- Graph ---------------- *)

let test_graph_basic () =
  let g = G.create 4 in
  checki "nodes" 4 (G.node_count g);
  checki "no edges" 0 (G.edge_count g);
  G.add_edge g 0 1;
  G.add_edge g 1 2;
  G.add_edge g 0 1;
  (* duplicate is a no-op *)
  checki "edges" 2 (G.edge_count g);
  check "has 0-1" true (G.has_edge g 0 1);
  check "symmetric" true (G.has_edge g 1 0);
  check "no 0-2" false (G.has_edge g 0 2);
  Alcotest.(check (list int)) "neighbors sorted" [ 0; 2 ] (G.neighbors g 1);
  checki "degree" 2 (G.degree g 1)

let test_graph_remove () =
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  G.remove_edge g 0 1;
  checki "one left" 1 (G.edge_count g);
  check "gone" false (G.has_edge g 0 1);
  G.remove_edge g 0 1;
  (* removing twice is a no-op *)
  checki "still one" 1 (G.edge_count g)

let test_graph_invalid () =
  let g = G.create 3 in
  check "self loop" true
    (try
       G.add_edge g 1 1;
       false
     with Invalid_argument _ -> true);
  check "out of range" true
    (try
       G.add_edge g 0 3;
       false
     with Invalid_argument _ -> true)

let test_graph_edges_iter () =
  let g = G.of_edges 4 [ (2, 1); (0, 3); (0, 1) ] in
  Alcotest.(check (list (pair int int)))
    "edges normalized and sorted"
    [ (0, 1); (0, 3); (1, 2) ]
    (G.edges g);
  let sum = G.fold_edges g (fun acc u v -> acc + u + v) 0 in
  checki "fold visits each edge once" 7 sum

let test_graph_copy_union () =
  let g1 = G.of_edges 3 [ (0, 1) ] in
  let g2 = G.copy g1 in
  G.add_edge g2 1 2;
  checki "copy independent" 1 (G.edge_count g1);
  let u = G.union g1 (G.of_edges 3 [ (1, 2) ]) in
  checki "union" 2 (G.edge_count u);
  check "union mismatch" true
    (try
       ignore (G.union g1 (G.create 4));
       false
     with Invalid_argument _ -> true)

let test_graph_subgraph_induced () =
  let g = G.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let h = G.induced g (fun u -> u <> 2) in
  checki "induced drops edges at 2" 1 (G.edge_count h);
  check "subgraph" true (G.is_subgraph h g);
  check "not subgraph" false (G.is_subgraph g h);
  check "equal self" true (G.equal g (G.copy g));
  check "not equal" false (G.equal g h)

(* ---------------- Traversal ---------------- *)

let path_graph n =
  G.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_bfs_path_graph () =
  let g = path_graph 5 in
  let d = T.bfs g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d;
  match T.bfs_path g 0 4 with
  | Some p -> Alcotest.(check (list int)) "path" [ 0; 1; 2; 3; 4 ] p
  | None -> Alcotest.fail "expected path"

let test_bfs_unreachable () =
  let g = G.of_edges 4 [ (0, 1); (2, 3) ] in
  let d = T.bfs g 0 in
  checki "unreachable max_int" max_int d.(2);
  check "no path" true (T.bfs_path g 0 3 = None)

let test_bfs_shortcut () =
  let g = G.of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  checki "direct" 1 (T.bfs g 0).(3)

let test_dijkstra_vs_bfs_unit_lengths () =
  (* with all points colinear at unit spacing, Dijkstra distance =
     BFS hops *)
  let n = 6 in
  let g = path_graph n in
  let pts = Array.init n (fun i -> P.make (float_of_int i) 0.) in
  let dd = T.dijkstra g pts 0 and bd = T.bfs g 0 in
  for i = 0 to n - 1 do
    checkf "consistent" (float_of_int bd.(i)) dd.(i)
  done

let test_dijkstra_prefers_short_detour () =
  (* 0 -- 2 direct is long; 0 - 1 - 2 detour is shorter *)
  let pts = [| P.make 0. 0.; P.make 1. 5.; P.make 2. 0. |] in
  let g = G.of_edges 3 [ (0, 2); (0, 1); (1, 2) ] in
  let d = T.dijkstra g pts 0 in
  checkf "direct shorter here" 2. d.(2);
  match T.dijkstra_path g pts 0 2 with
  | Some p -> Alcotest.(check (list int)) "direct path" [ 0; 2 ] p
  | None -> Alcotest.fail "expected path"

let test_dijkstra_detour_wins () =
  let pts = [| P.make 0. 0.; P.make 5. 0.1; P.make 10. 0. |] in
  let g = G.of_edges 3 [ (0, 2); (0, 1); (1, 2) ] in
  (* direct |02| = 10; detour via 1 ~ 10.002: direct wins.  Now move
     1 onto the line: detour exactly 10.0 either way; make direct
     artificially long by placing 2 further *)
  let d = T.dijkstra g pts 0 in
  check "direct wins" true (d.(2) = 10.)

let test_path_helpers () =
  let pts = [| P.make 0. 0.; P.make 3. 4.; P.make 3. 8. |] in
  checkf "length" 9. (T.path_length pts [ 0; 1; 2 ]);
  checki "hops" 2 (T.path_hops [ 0; 1; 2 ]);
  checki "hops singleton" 0 (T.path_hops [ 0 ]);
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  check "is path" true (T.is_path g [ 0; 1; 2 ]);
  check "not path" false (T.is_path g [ 0; 2 ]);
  check "empty not path" false (T.is_path g [])

let test_diameter () =
  checki "path diameter" 4 (T.diameter (path_graph 5));
  let star = G.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  checki "star diameter" 2 (T.diameter star);
  checki "star ecc center" 1 (T.eccentricity star 0);
  checki "star ecc leaf" 2 (T.eccentricity star 1)

(* ---------------- Components ---------------- *)

let test_components () =
  let g = G.of_edges 6 [ (0, 1); (1, 2); (3, 4) ] in
  checki "three components" 3 (Netgraph.Components.count g);
  check "not connected" false (Netgraph.Components.is_connected g);
  check "connected subset" true
    (Netgraph.Components.connected_within g [ 0; 1; 2 ]);
  check "disconnected subset" false
    (Netgraph.Components.connected_within g [ 0; 3 ]);
  (* subset connectivity must use only member-to-member edges *)
  let h = G.of_edges 3 [ (0, 1); (1, 2) ] in
  check "members only" false (Netgraph.Components.connected_within h [ 0; 2 ]);
  Alcotest.(check (list int))
    "reachable" [ 0; 1; 2 ]
    (Netgraph.Components.reachable g 0);
  check "empty connected" true (Netgraph.Components.is_connected (G.create 0));
  check "singleton connected" true
    (Netgraph.Components.is_connected (G.create 1))

(* ---------------- Metrics ---------------- *)

let test_degree_stats () =
  let g = G.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  let d = Netgraph.Metrics.degree_stats g in
  checkf "avg" 1.5 d.Netgraph.Metrics.deg_avg;
  checki "max" 3 d.Netgraph.Metrics.deg_max;
  checki "edges" 3 d.Netgraph.Metrics.edges

let test_stretch_identity () =
  let pts = Array.init 5 (fun i -> P.make (float_of_int i) 0.) in
  let g = path_graph 5 in
  let s = Netgraph.Metrics.stretch_factors ~base:g ~sub:g pts in
  checkf "len avg" 1. s.Netgraph.Metrics.len_avg;
  checkf "hop max" 1. s.Netgraph.Metrics.hop_max

let test_stretch_detour () =
  (* base: triangle 0-1-2 with direct edge 0-2; sub removes 0-2.
     points: 0 (0,0), 1 (1,1), 2 (2,0); |02| = 2, detour = 2*sqrt 2 *)
  let pts = [| P.make 0. 0.; P.make 1. 1.; P.make 2. 0. |] in
  let base = G.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let sub = G.of_edges 3 [ (0, 1); (1, 2) ] in
  let s =
    Netgraph.Metrics.stretch_factors ~one_hop_direct:false ~base ~sub pts
  in
  checkf "len max = sqrt 2" (sqrt 2.) s.Netgraph.Metrics.len_max;
  checkf "hop max = 2" 2. s.Netgraph.Metrics.hop_max;
  (* with the paper's direct-transmission rule all three pairs are
     adjacent in base, so stretch is 1 *)
  let s' = Netgraph.Metrics.stretch_factors ~base ~sub pts in
  checkf "direct rule" 1. s'.Netgraph.Metrics.len_max

let test_stretch_disconnected_sub_raises () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 2. 0. |] in
  let base = G.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let sub = G.of_edges 3 [ (0, 1) ] in
  check "raises" true
    (try
       ignore
         (Netgraph.Metrics.stretch_factors ~one_hop_direct:false ~base ~sub
            pts);
       false
     with Invalid_argument _ -> true)

let test_pair_stretch () =
  let pts = [| P.make 0. 0.; P.make 1. 1.; P.make 2. 0. |] in
  let base = G.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let sub = G.of_edges 3 [ (0, 1); (1, 2) ] in
  (match Netgraph.Metrics.pair_stretch ~base ~sub pts 0 2 with
  | Some (len, hops) ->
    checkf "len" (sqrt 2.) len;
    checkf "hops" 2. hops
  | None -> Alcotest.fail "expected stretch");
  let disconnected = G.create 3 in
  check "disconnected none" true
    (Netgraph.Metrics.pair_stretch ~base ~sub:disconnected pts 0 2 = None)

let test_total_edge_length () =
  let pts = [| P.make 0. 0.; P.make 3. 4.; P.make 6. 8. |] in
  let g = G.of_edges 3 [ (0, 1); (1, 2) ] in
  checkf "total" 10. (Netgraph.Metrics.total_edge_length g pts)

let test_power_stretch () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 2. 0. |] in
  let base = G.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let sub = G.of_edges 3 [ (0, 1); (1, 2) ] in
  (* power beta=2: direct 0-2 costs 4, detour costs 1+1=2 < 4, so the
     subgraph is BETTER than the direct link *)
  let avg, mx =
    Netgraph.Metrics.power_stretch ~one_hop_direct:false ~base ~sub pts
      ~beta:2.
  in
  checkf "max ratio" 1. mx;
  check "avg le 1" true (avg <= 1.)

(* ---------------- Planarity ---------------- *)

let test_planarity () =
  let pts = [| P.make 0. 0.; P.make 2. 2.; P.make 0. 2.; P.make 2. 0. |] in
  let crossing = G.of_edges 4 [ (0, 1); (2, 3) ] in
  check "crossing detected" false (Netgraph.Planarity.is_planar crossing pts);
  checki "one crossing" 1 (Netgraph.Planarity.crossing_count crossing pts);
  let planar = G.of_edges 4 [ (0, 2); (2, 1); (1, 3); (3, 0) ] in
  check "cycle planar" true (Netgraph.Planarity.is_planar planar pts);
  (* edges sharing an endpoint never count as crossing *)
  let fan = G.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  check "fan planar" true (Netgraph.Planarity.is_planar fan pts)

let test_euler_bound () =
  check "sparse ok" true (Netgraph.Planarity.euler_bound_ok (path_graph 5));
  (* K5: 10 edges > 3*5-6 = 9 *)
  let k5 = G.create 5 in
  for u = 0 to 4 do
    for v = u + 1 to 4 do
      G.add_edge k5 u v
    done
  done;
  check "K5 fails" false (Netgraph.Planarity.euler_bound_ok k5)

let suites =
  [
    ( "netgraph.graph",
      [
        Alcotest.test_case "basic" `Quick test_graph_basic;
        Alcotest.test_case "remove" `Quick test_graph_remove;
        Alcotest.test_case "invalid" `Quick test_graph_invalid;
        Alcotest.test_case "edges/iter" `Quick test_graph_edges_iter;
        Alcotest.test_case "copy/union" `Quick test_graph_copy_union;
        Alcotest.test_case "subgraph/induced" `Quick
          test_graph_subgraph_induced;
      ] );
    ( "netgraph.traversal",
      [
        Alcotest.test_case "bfs path graph" `Quick test_bfs_path_graph;
        Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
        Alcotest.test_case "bfs shortcut" `Quick test_bfs_shortcut;
        Alcotest.test_case "dijkstra = bfs on unit lengths" `Quick
          test_dijkstra_vs_bfs_unit_lengths;
        Alcotest.test_case "dijkstra shortest" `Quick
          test_dijkstra_prefers_short_detour;
        Alcotest.test_case "dijkstra direct" `Quick test_dijkstra_detour_wins;
        Alcotest.test_case "path helpers" `Quick test_path_helpers;
        Alcotest.test_case "diameter/eccentricity" `Quick test_diameter;
      ] );
    ( "netgraph.components",
      [ Alcotest.test_case "components" `Quick test_components ] );
    ( "netgraph.metrics",
      [
        Alcotest.test_case "degree stats" `Quick test_degree_stats;
        Alcotest.test_case "stretch identity" `Quick test_stretch_identity;
        Alcotest.test_case "stretch detour" `Quick test_stretch_detour;
        Alcotest.test_case "stretch broken subgraph" `Quick
          test_stretch_disconnected_sub_raises;
        Alcotest.test_case "pair stretch" `Quick test_pair_stretch;
        Alcotest.test_case "total edge length" `Quick test_total_edge_length;
        Alcotest.test_case "power stretch" `Quick test_power_stretch;
      ] );
    ( "netgraph.planarity",
      [
        Alcotest.test_case "crossing detection" `Quick test_planarity;
        Alcotest.test_case "euler bound" `Quick test_euler_bound;
      ] );
  ]
