(* Network-lifetime simulation under the power model. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  pts

let test_no_deaths_with_huge_battery () =
  let pts = instance 990L 60 60. in
  let r =
    Core.Energy.run pts ~radius:60. ~sink:0 ~policy:Core.Energy.Static
      ~epochs:10 ~battery:1e15 ~beta:3.
  in
  check "nobody dies" true (r.Core.Energy.first_death = None);
  checki "all epochs run" 10 r.Core.Energy.epochs_run;
  Alcotest.(check (float 1e-9)) "full delivery" 1. (Core.Energy.delivery_ratio r);
  checki "attempted = (n-1) * epochs" (59 * 10) r.Core.Energy.attempted

let test_sink_never_dies_and_spends_nothing () =
  let pts = instance 991L 60 60. in
  let r =
    Core.Energy.run pts ~radius:60. ~sink:5 ~policy:Core.Energy.Static
      ~epochs:50 ~battery:1e8 ~beta:3.
  in
  check "sink not among deaths" true
    (List.for_all (fun (_, u) -> u <> 5) r.Core.Energy.deaths);
  (* the sink only receives *)
  Alcotest.(check (float 1e-9)) "sink spends 0" 0. r.Core.Energy.spent.(5)

let test_deaths_chronological_and_consistent () =
  let pts = instance 992L 80 60. in
  let r =
    Core.Energy.run pts ~radius:60. ~sink:0 ~policy:Core.Energy.Static
      ~epochs:100 ~battery:5e7 ~beta:3.
  in
  (match r.Core.Energy.first_death with
  | Some e ->
    check "first death matches list" true
      (match r.Core.Energy.deaths with (e', _) :: _ -> e' = e | [] -> false)
  | None -> check "no deaths listed" true (r.Core.Energy.deaths = []));
  let rec sorted = function
    | (e1, _) :: ((e2, _) :: _ as rest) -> e1 <= e2 && sorted rest
    | _ -> true
  in
  check "chronological" true (sorted r.Core.Energy.deaths);
  (* dead nodes spent at least their battery *)
  List.iter
    (fun (_, u) -> check "exhausted" true (r.Core.Energy.spent.(u) >= 5e7))
    r.Core.Energy.deaths

let test_rotation_reduces_deaths () =
  (* aggregate across seeds: energy-aware reclustering must not kill
     more nodes than the static policy, and typically kills far
     fewer *)
  let total_static = ref 0 and total_aware = ref 0 in
  List.iter
    (fun seed ->
      let pts = instance seed 100 60. in
      let run policy =
        Core.Energy.run pts ~radius:60. ~sink:0 ~policy ~epochs:100
          ~battery:2e8 ~beta:3.
      in
      total_static :=
        !total_static + List.length (run Core.Energy.Static).Core.Energy.deaths;
      total_aware :=
        !total_aware
        + List.length (run (Core.Energy.Energy_aware 5)).Core.Energy.deaths)
    [ 11L; 12L; 13L ];
  check
    (Printf.sprintf "aware deaths (%d) <= static deaths (%d)" !total_aware
       !total_static)
    true
    (!total_aware <= !total_static)

let test_invalid_args () =
  let pts = instance 993L 20 60. in
  let bad f = try f (); false with Invalid_argument _ -> true in
  check "bad sink" true
    (bad (fun () ->
         ignore
           (Core.Energy.run pts ~radius:60. ~sink:99 ~policy:Core.Energy.Static
              ~epochs:1 ~battery:1. ~beta:2.)));
  check "bad epochs" true
    (bad (fun () ->
         ignore
           (Core.Energy.run pts ~radius:60. ~sink:0 ~policy:Core.Energy.Static
              ~epochs:0 ~battery:1. ~beta:2.)))

let suites =
  [
    ( "core.energy",
      [
        Alcotest.test_case "huge battery, no deaths" `Quick
          test_no_deaths_with_huge_battery;
        Alcotest.test_case "sink immortal and passive" `Quick
          test_sink_never_dies_and_spends_nothing;
        Alcotest.test_case "death accounting" `Quick
          test_deaths_chronological_and_consistent;
        Alcotest.test_case "rotation reduces deaths" `Slow
          test_rotation_reduces_deaths;
        Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
      ] );
  ]
