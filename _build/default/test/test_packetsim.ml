(* Packet-level routing: the distsim-hosted GPSR must traverse exactly
   the path the centralized route computation predicts. *)

module G = Netgraph.Graph
module P = Geometry.Point

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instance seed n radius =
  let rng = Wireless.Rand.create seed in
  let pts, _ =
    Wireless.Deploy.connected_uniform rng ~n ~side:200. ~radius
      ~max_attempts:2000
  in
  pts

let test_packet_equals_path_gpsr () =
  for seed = 930 to 933 do
    let pts = instance (Int64.of_int seed) 60 50. in
    let bb = Core.Backbone.build pts ~radius:50. in
    let planar = (Core.Backbone.ldel_full bb).Core.Ldel.planar in
    let n = Array.length pts in
    for src = 0 to n - 1 do
      let dst = (src + (n / 2)) mod n in
      if src <> dst then begin
        let expected = Core.Routing.gfg planar pts ~src ~dst in
        let got = Core.Packetsim.gpsr planar pts ~src ~dst in
        match expected with
        | Some path ->
          check "delivered" true got.Core.Packetsim.delivered;
          check "same trajectory" true (got.Core.Packetsim.path = path);
          checki "one transmission per hop"
            (Netgraph.Traversal.path_hops path)
            got.Core.Packetsim.transmissions
        | None -> check "both undelivered" false got.Core.Packetsim.delivered
      end
    done
  done

let test_packet_greedy_drops_at_minimum () =
  (* the "C" shape from the routing tests: greedy packets vanish at
     the dead end, GPSR packets arrive *)
  let pts =
    [|
      P.make 0. 0.; P.make 0. 2.; P.make 2. 2.; P.make 2. 0.; P.make 0.9 0.;
    |]
  in
  let g = G.of_edges 5 [ (0, 4); (0, 1); (1, 2); (2, 3) ] in
  let dropped = Core.Packetsim.greedy g pts ~src:0 ~dst:3 in
  check "greedy packet dropped" false dropped.Core.Packetsim.delivered;
  let ok = Core.Packetsim.gpsr g pts ~src:0 ~dst:3 in
  check "gpsr packet delivered" true ok.Core.Packetsim.delivered;
  check "trajectory valid" true
    (Netgraph.Traversal.is_path g ok.Core.Packetsim.path)

let test_packet_self_delivery () =
  let pts = instance 934L 20 60. in
  let g = Wireless.Udg.build pts ~radius:60. in
  let r = Core.Packetsim.gpsr g pts ~src:3 ~dst:3 in
  check "delivered to self" true r.Core.Packetsim.delivered;
  checki "no transmissions" 0 r.Core.Packetsim.transmissions

let test_packet_adjacent () =
  let pts = [| P.make 0. 0.; P.make 1. 0. |] in
  let g = G.of_edges 2 [ (0, 1) ] in
  let r = Core.Packetsim.gpsr g pts ~src:0 ~dst:1 in
  check "delivered" true r.Core.Packetsim.delivered;
  Alcotest.(check (list int)) "direct" [ 0; 1 ] r.Core.Packetsim.path;
  checki "one transmission" 1 r.Core.Packetsim.transmissions

let test_packet_unreachable () =
  let pts = [| P.make 0. 0.; P.make 1. 0.; P.make 50. 0.; P.make 51. 0. |] in
  let g = G.of_edges 4 [ (0, 1); (2, 3) ] in
  let r = Core.Packetsim.gpsr g pts ~src:0 ~dst:3 in
  check "not delivered" false r.Core.Packetsim.delivered

let test_many () =
  let pts = instance 935L 60 50. in
  let bb = Core.Backbone.build pts ~radius:50. in
  let planar = (Core.Backbone.ldel_full bb).Core.Ldel.planar in
  let delivered, pairs, avg_tx =
    Core.Packetsim.many planar pts ~pairs:50
      (Wireless.Rand.create 7L)
      ~router:`Gpsr
  in
  checki "all delivered on planar connected" pairs delivered;
  check "sane cost" true (avg_tx >= 1. && avg_tx < 100.)

let suites =
  [
    ( "core.packetsim",
      [
        Alcotest.test_case "packet GPSR ≡ path GPSR" `Slow
          test_packet_equals_path_gpsr;
        Alcotest.test_case "greedy drops, gpsr recovers" `Quick
          test_packet_greedy_drops_at_minimum;
        Alcotest.test_case "self delivery" `Quick test_packet_self_delivery;
        Alcotest.test_case "adjacent" `Quick test_packet_adjacent;
        Alcotest.test_case "unreachable" `Quick test_packet_unreachable;
        Alcotest.test_case "bulk workload" `Quick test_many;
      ] );
  ]
