let component_labels g =
  let n = Graph.node_count g in
  let label = Array.make n (-1) in
  for s = 0 to n - 1 do
    if label.(s) = -1 then begin
      let q = Queue.create () in
      label.(s) <- s;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if label.(v) = -1 then begin
              label.(v) <- s;
              Queue.add v q
            end)
          (Graph.neighbors g u)
      done
    end
  done;
  label

let count g =
  let label = component_labels g in
  let distinct = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace distinct l ()) label;
  Hashtbl.length distinct

let is_connected g = Graph.node_count g = 0 || count g = 1

let connected_within g nodes =
  match nodes with
  | [] | [ _ ] -> true
  | s :: _ ->
    let members = Hashtbl.create (List.length nodes) in
    List.iter (fun u -> Hashtbl.replace members u ()) nodes;
    let seen = Hashtbl.create (List.length nodes) in
    let q = Queue.create () in
    Hashtbl.replace seen s ();
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if Hashtbl.mem members v && not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            Queue.add v q
          end)
        (Graph.neighbors g u)
    done;
    List.for_all (Hashtbl.mem seen) nodes

let reachable g s =
  let dist = Traversal.bfs g s in
  let acc = ref [] in
  Array.iteri (fun i d -> if d <> max_int then acc := i :: !acc) dist;
  List.rev !acc
