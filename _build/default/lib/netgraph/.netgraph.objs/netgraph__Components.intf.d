lib/netgraph/components.mli: Graph
