lib/netgraph/metrics.ml: Array Geometry Graph List Printf Traversal
