lib/netgraph/graph.ml: Array Format Int List Printf Set
