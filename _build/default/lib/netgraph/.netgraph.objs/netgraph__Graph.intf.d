lib/netgraph/graph.mli: Format
