lib/netgraph/planarity.ml: Array Geometry Graph List
