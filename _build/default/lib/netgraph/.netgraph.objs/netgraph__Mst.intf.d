lib/netgraph/mst.mli: Geometry Graph
