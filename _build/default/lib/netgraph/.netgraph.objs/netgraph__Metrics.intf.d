lib/netgraph/metrics.mli: Geometry Graph
