lib/netgraph/components.ml: Array Graph Hashtbl List Queue Traversal
