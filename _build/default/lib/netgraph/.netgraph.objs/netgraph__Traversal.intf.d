lib/netgraph/traversal.mli: Geometry Graph
