lib/netgraph/mst.ml: Array Components Float Geometry Graph List Metrics
