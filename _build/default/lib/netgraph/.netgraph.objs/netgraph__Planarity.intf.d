lib/netgraph/planarity.mli: Geometry Graph
