lib/netgraph/traversal.ml: Array Geometry Graph List Queue
