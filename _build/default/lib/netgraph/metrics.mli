(** Topology quality metrics: degree statistics, stretch factors and
    planarity-related counts — the quantities reported in the paper's
    Table I and Figures 8–12. *)

type degree_stats = {
  deg_avg : float;  (** average degree over all nodes, [2m/n] *)
  deg_max : int;    (** maximum degree *)
  edges : int;      (** number of undirected edges *)
}

val degree_stats : Graph.t -> degree_stats

type stretch = {
  len_avg : float;  (** average length stretch over connected pairs *)
  len_max : float;  (** maximum length stretch *)
  hop_avg : float;  (** average hop stretch over connected pairs *)
  hop_max : float;  (** maximum hop stretch *)
}

(** [stretch_factors ~base ~sub points] measures how much longer paths
    get when restricted to [sub] instead of [base], over every node
    pair connected in [base].

    With [one_hop_direct] (default [true]) pairs adjacent in [base]
    contribute stretch exactly 1: this is the paper's routing model,
    where a node transmits directly to any destination within range
    and only out-of-range destinations go through the structure.
    Pass [~one_hop_direct:false] to measure the raw subgraph stretch
    (used by the spanner-definition tests).

    @raise Invalid_argument if some pair connected in [base] is
    disconnected in [sub] — a subgraph that loses connectivity is not
    a spanner at all, and silently skipping such pairs would hide the
    failure. *)
val stretch_factors :
  ?one_hop_direct:bool ->
  base:Graph.t -> sub:Graph.t -> Geometry.Point.t array -> stretch

(** Stretch of a single pair: [(length ratio, hop ratio)], or [None]
    when the pair is disconnected in either graph. *)
val pair_stretch :
  base:Graph.t ->
  sub:Graph.t ->
  Geometry.Point.t array ->
  int ->
  int ->
  (float * float) option

(** Total Euclidean length of all edges. *)
val total_edge_length : Graph.t -> Geometry.Point.t array -> float

(** [power_stretch ~base ~sub points ~beta] is the power stretch
    factor with path cost [sum |link|^beta] (the paper's power model
    with attenuation exponent [beta], typically in [2, 5]): average
    and maximum over connected pairs. *)
val power_stretch :
  ?one_hop_direct:bool ->
  base:Graph.t ->
  sub:Graph.t ->
  Geometry.Point.t array ->
  beta:float ->
  float * float
