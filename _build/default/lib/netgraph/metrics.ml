type degree_stats = { deg_avg : float; deg_max : int; edges : int }

let degree_stats g =
  let n = Graph.node_count g in
  let m = Graph.edge_count g in
  let deg_max = ref 0 in
  for u = 0 to n - 1 do
    let d = Graph.degree g u in
    if d > !deg_max then deg_max := d
  done;
  {
    deg_avg = (if n = 0 then 0. else 2. *. float_of_int m /. float_of_int n);
    deg_max = !deg_max;
    edges = m;
  }

type stretch = {
  len_avg : float;
  len_max : float;
  hop_avg : float;
  hop_max : float;
}

(* Dijkstra with arbitrary edge costs, shared by the length and power
   metrics.  Kept local: the public traversal module exposes the
   Euclidean special case. *)
let weighted_sssp g cost s =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let settled = Array.make n false in
  dist.(s) <- 0.;
  let data = ref (Array.make 16 (0., 0)) in
  let size = ref 0 in
  let swap i j =
    let t = !data.(i) in
    !data.(i) <- !data.(j);
    !data.(j) <- t
  in
  let push k v =
    if !size = Array.length !data then begin
      let bigger = Array.make (2 * !size) (0., 0) in
      Array.blit !data 0 bigger 0 !size;
      data := bigger
    end;
    !data.(!size) <- (k, v);
    incr size;
    let i = ref (!size - 1) in
    while !i > 0 && fst !data.((!i - 1) / 2) > fst !data.(!i) do
      swap ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done
  in
  let pop () =
    if !size = 0 then None
    else begin
      let top = !data.(0) in
      decr size;
      !data.(0) <- !data.(!size);
      let i = ref 0 and continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < !size && fst !data.(l) < fst !data.(!smallest) then smallest := l;
        if r < !size && fst !data.(r) < fst !data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
  in
  push 0. s;
  let rec loop () =
    match pop () with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        List.iter
          (fun v ->
            let nd = d +. cost u v in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              push nd v
            end)
          (Graph.neighbors g u)
      end;
      loop ()
  in
  loop ();
  dist

let generic_stretch ~one_hop_direct ~base ~sub sssp to_float =
  let n = Graph.node_count base in
  if n <> Graph.node_count sub then
    invalid_arg "Metrics: node count mismatch";
  let sum = ref 0. and maxr = ref 0. and pairs = ref 0 in
  for s = 0 to n - 1 do
    let db = sssp base s in
    let ds = sssp sub s in
    for t = s + 1 to n - 1 do
      if one_hop_direct && Graph.has_edge base s t then begin
        (* the paper's routing sends directly to in-range nodes, so
           adjacent pairs have stretch exactly 1 *)
        sum := !sum +. 1.;
        if !maxr < 1. then maxr := 1.;
        incr pairs
      end
      else
        match to_float db.(t), to_float ds.(t) with
        | None, _ -> ()
        | Some _, None ->
          invalid_arg
            (Printf.sprintf
               "Metrics.stretch_factors: pair (%d, %d) connected in base but \
                not in subgraph"
               s t)
        | Some b, Some sb ->
          if b > 0. then begin
            let r = sb /. b in
            sum := !sum +. r;
            if r > !maxr then maxr := r;
            incr pairs
          end
    done
  done;
  if !pairs = 0 then (1., 1.) else (!sum /. float_of_int !pairs, !maxr)

let stretch_factors ?(one_hop_direct = true) ~base ~sub points =
  let float_dist d = if d = infinity then None else Some d in
  let hop_dist d = if d = max_int then None else Some (float_of_int d) in
  let len_avg, len_max =
    generic_stretch ~one_hop_direct ~base ~sub
      (fun g s -> Traversal.dijkstra g points s)
      float_dist
  in
  let hop_avg, hop_max =
    generic_stretch ~one_hop_direct ~base ~sub (fun g s -> Traversal.bfs g s)
      hop_dist
  in
  { len_avg; len_max; hop_avg; hop_max }

let pair_stretch ~base ~sub points s t =
  let db = Traversal.dijkstra base points s in
  let ds = Traversal.dijkstra sub points s in
  let hb = Traversal.bfs base s in
  let hs = Traversal.bfs sub s in
  if db.(t) = infinity || ds.(t) = infinity || db.(t) = 0. then None
  else
    Some
      ( ds.(t) /. db.(t),
        float_of_int hs.(t) /. float_of_int (max 1 hb.(t)) )

let total_edge_length g points =
  Graph.fold_edges g
    (fun acc u v -> acc +. Geometry.Point.dist points.(u) points.(v))
    0.

let power_stretch ?(one_hop_direct = true) ~base ~sub points ~beta =
  let cost u v = Geometry.Point.dist points.(u) points.(v) ** beta in
  let to_float d = if d = infinity then None else Some d in
  generic_stretch ~one_hop_direct ~base ~sub
    (fun g s -> weighted_sssp g cost s)
    to_float
