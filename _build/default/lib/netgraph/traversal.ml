let bfs g s =
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      (Graph.neighbors g u)
  done;
  dist

let bfs_parents g s =
  let n = Graph.node_count g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(s) <- true;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          Queue.add v q
        end)
      (Graph.neighbors g u)
  done;
  (parent, seen)

let reconstruct parent s t =
  let rec go acc v = if v = s then s :: acc else go (v :: acc) parent.(v) in
  go [] t

let bfs_path g s t =
  let parent, seen = bfs_parents g s in
  if not seen.(t) then None else Some (reconstruct parent s t)

(* Binary min-heap keyed by float priority; lazily deleted entries are
   skipped on pop by checking against the settled array. *)
module Heap = struct
  type t = {
    mutable data : (float * int) array;
    mutable size : int;
  }

  let create () = { data = Array.make 16 (0., 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h k v =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0., 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (k, v);
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let dijkstra_with_parents g points s =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  dist.(s) <- 0.;
  let heap = Heap.create () in
  Heap.push heap 0. s;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        List.iter
          (fun v ->
            let w = Geometry.Point.dist points.(u) points.(v) in
            let nd = d +. w in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              parent.(v) <- u;
              Heap.push heap nd v
            end)
          (Graph.neighbors g u)
      end;
      loop ()
  in
  loop ();
  (dist, parent)

let dijkstra g points s = fst (dijkstra_with_parents g points s)

let dijkstra_path g points s t =
  let dist, parent = dijkstra_with_parents g points s in
  if dist.(t) = infinity then None else Some (reconstruct parent s t)

let path_length points p =
  let rec go acc = function
    | u :: (v :: _ as rest) ->
      go (acc +. Geometry.Point.dist points.(u) points.(v)) rest
    | [ _ ] | [] -> acc
  in
  go 0. p

let path_hops = function [] -> 0 | p -> List.length p - 1

let is_path g = function
  | [] -> false
  | p ->
    let rec go = function
      | u :: (v :: _ as rest) -> Graph.has_edge g u v && go rest
      | [ _ ] | [] -> true
    in
    go p

let eccentricity g s =
  Array.fold_left
    (fun acc d -> if d <> max_int && d > acc then d else acc)
    0 (bfs g s)

let diameter g =
  let n = Graph.node_count g in
  let best = ref 0 in
  for s = 0 to n - 1 do
    let e = eccentricity g s in
    if e > !best then best := e
  done;
  !best
