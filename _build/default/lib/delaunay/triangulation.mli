(** Delaunay triangulation (incremental Bowyer–Watson).

    The construction maintains a triangulation of the full plane by
    adding one symbolic ghost vertex "at infinity": every hull edge
    carries a ghost triangle, so point insertion is a single uniform
    cavity operation whether the point lands inside or outside the
    current hull.  All sidedness and in-circumdisk decisions go through
    the exact predicates of {!Geometry.Predicates}, so the result is a
    true Delaunay triangulation (unique when no four input points are
    co-circular, which the paper assumes).

    Degenerate inputs are handled: fewer than three points or an
    entirely collinear set produce no triangles, and {!edges} falls
    back to the Delaunay graph of such inputs (the path along the
    line, or the single edge). *)

type t

(** [triangulate points] builds the Delaunay triangulation.  Point
    indices in the result refer to positions in [points].
    @raise Invalid_argument when two input points coincide. *)
val triangulate : Geometry.Point.t array -> t

(** Number of input points. *)
val point_count : t -> int

(** The input points. *)
val points : t -> Geometry.Point.t array

(** All Delaunay triangles as index triples in counterclockwise order,
    normalized so the smallest index comes first. *)
val triangles : t -> (int * int * int) list

(** [has_triangle t i j k] tests whether the three indices form a
    triangle of the triangulation, in any order. *)
val has_triangle : t -> int -> int -> int -> bool

(** All Delaunay edges as [(u, v)] with [u < v], sorted. *)
val edges : t -> (int * int) list

(** Convex hull indices in counterclockwise order (or the sorted point
    sequence for collinear inputs). *)
val hull : t -> int list

(** [triangles_of_vertex t v] lists the triangles incident to [v]. *)
val triangles_of_vertex : t -> int -> (int * int * int) list

(** [is_delaunay points tris] verifies the empty-circumcircle property
    of a triangle list against every point — an O(t·n) checker used by
    the test-suite, exposed so other layers can assert on it too. *)
val is_delaunay : Geometry.Point.t array -> (int * int * int) list -> bool
