lib/delaunay/triangulation.mli: Geometry
