lib/delaunay/triangulation.ml: Array Geometry Hashtbl List Set
