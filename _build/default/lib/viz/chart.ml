type series = { label : string; points : (float * float) list }

let default_colors =
  [
    "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b";
    "#e377c2"; "#17becf"; "#bcbd22"; "#7f7f7f"; "#aec7e8"; "#ff9896";
  ]

(* a "nice" tick step: 1, 2 or 5 times a power of ten, aiming for
   roughly [target] intervals over [span] *)
let nice_step span target =
  if span <= 0. then 1.
  else begin
    let raw = span /. float_of_int target in
    let mag = 10. ** Float.round (Float.floor (log10 raw)) in
    let r = raw /. mag in
    let m = if r < 1.5 then 1. else if r < 3.5 then 2. else if r < 7.5 then 5. else 10. in
    m *. mag
  end

let ticks lo hi step =
  let first = Float.ceil (lo /. step) *. step in
  let rec go v acc =
    if v > hi +. (step /. 2.) then List.rev acc else go (v +. step) (v :: acc)
  in
  go first []

let fmt_tick v =
  if Float.abs (v -. Float.round v) < 1e-9 && Float.abs v < 1e7 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render ?(width = 720) ?(height = 480) ?(colors = default_colors) ~title
    ~xlabel ~ylabel series =
  let all_pts = List.concat_map (fun s -> s.points) series in
  if all_pts = [] then invalid_arg "Chart.render: no data";
  let xs = List.map fst all_pts and ys = List.map snd all_pts in
  let fmin = List.fold_left Float.min infinity in
  let fmax = List.fold_left Float.max neg_infinity in
  let xmin = fmin xs and xmax = fmax xs in
  let ymin = Float.min 0. (fmin ys) and ymax = fmax ys in
  let ymax = if ymax = ymin then ymin +. 1. else ymax in
  let xmax = if xmax = xmin then xmin +. 1. else xmax in
  let ypad = (ymax -. ymin) *. 0.08 in
  let ymin = ymin and ymax = ymax +. ypad in
  (* layout *)
  let ml = 64. and mr = 180. and mt = 42. and mb = 52. in
  let pw = float_of_int width -. ml -. mr in
  let ph = float_of_int height -. mt -. mb in
  let px x = ml +. ((x -. xmin) /. (xmax -. xmin) *. pw) in
  let py y = mt +. ph -. ((y -. ymin) /. (ymax -. ymin) *. ph) in
  let buf = Buffer.create 8192 in
  let put fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  put
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n"
    width height width height;
  put "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height;
  (* title *)
  put
    "<text x=\"%g\" y=\"24\" font-size=\"15\" text-anchor=\"middle\" \
     font-weight=\"bold\">%s</text>\n"
    (ml +. (pw /. 2.)) title;
  (* gridlines + ticks *)
  let xstep = nice_step (xmax -. xmin) 8 in
  let ystep = nice_step (ymax -. ymin) 7 in
  List.iter
    (fun v ->
      put
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#dddddd\"/>\n"
        (px v) mt (px v) (mt +. ph);
      put
        "<text x=\"%g\" y=\"%g\" font-size=\"11\" \
         text-anchor=\"middle\">%s</text>\n"
        (px v)
        (mt +. ph +. 16.)
        (fmt_tick v))
    (ticks xmin xmax xstep);
  List.iter
    (fun v ->
      put
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#dddddd\"/>\n"
        ml (py v) (ml +. pw) (py v);
      put
        "<text x=\"%g\" y=\"%g\" font-size=\"11\" text-anchor=\"end\">%s</text>\n"
        (ml -. 6.)
        (py v +. 4.)
        (fmt_tick v))
    (ticks ymin ymax ystep);
  (* axes *)
  put
    "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" fill=\"none\" \
     stroke=\"black\"/>\n"
    ml mt pw ph;
  put
    "<text x=\"%g\" y=\"%g\" font-size=\"12\" text-anchor=\"middle\">%s</text>\n"
    (ml +. (pw /. 2.))
    (float_of_int height -. 12.)
    xlabel;
  put
    "<text x=\"16\" y=\"%g\" font-size=\"12\" text-anchor=\"middle\" \
     transform=\"rotate(-90 16 %g)\">%s</text>\n"
    (mt +. (ph /. 2.))
    (mt +. (ph /. 2.))
    ylabel;
  (* series *)
  let color i = List.nth colors (i mod List.length colors) in
  List.iteri
    (fun i s ->
      match s.points with
      | [] -> ()
      | pts ->
        let path =
          String.concat " "
            (List.map (fun (x, y) -> Printf.sprintf "%g,%g" (px x) (py y)) pts)
        in
        put
          "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
           stroke-width=\"1.8\"/>\n"
          path (color i);
        List.iter
          (fun (x, y) ->
            put "<circle cx=\"%g\" cy=\"%g\" r=\"2.6\" fill=\"%s\"/>\n" (px x)
              (py y) (color i))
          pts)
    series;
  (* legend *)
  List.iteri
    (fun i s ->
      let ly = mt +. 10. +. (float_of_int i *. 17.) in
      let lx = ml +. pw +. 14. in
      put
        "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"%s\" \
         stroke-width=\"2\"/>\n"
        lx ly (lx +. 20.) ly (color i);
      put "<text x=\"%g\" y=\"%g\" font-size=\"11\">%s</text>\n" (lx +. 26.)
        (ly +. 4.) s.label)
    series;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file ?width ?height ?colors ~title ~xlabel ~ylabel series file =
  let oc = open_out file in
  output_string oc (render ?width ?height ?colors ~title ~xlabel ~ylabel series);
  close_out oc
