type node_style = {
  fill : string;
  shape : [ `Circle | `Square ];
  size : float;
}

let dominator_style = { fill = "#d62728"; shape = `Square; size = 4. }
let connector_style = { fill = "#1f77b4"; shape = `Square; size = 3. }
let dominatee_style = { fill = "#7f7f7f"; shape = `Circle; size = 2. }

type t = {
  width : int;
  height : int;
  world : Geometry.Bbox.t;
  buf : Buffer.t;
}

let margin = 10.

let create ~width ~height ~world = { width; height; world; buf = Buffer.create 4096 }

let project t (p : Geometry.Point.t) =
  let w = Geometry.Bbox.width t.world and h = Geometry.Bbox.height t.world in
  let w = if w = 0. then 1. else w and h = if h = 0. then 1. else h in
  let x =
    margin +. ((p.x -. t.world.Geometry.Bbox.xmin) /. w
              *. (float_of_int t.width -. (2. *. margin)))
  in
  (* flip y: SVG grows downward, the paper's plots grow upward *)
  let y =
    float_of_int t.height -. margin
    -. ((p.y -. t.world.Geometry.Bbox.ymin) /. h
       *. (float_of_int t.height -. (2. *. margin)))
  in
  (x, y)

let add_edges t points g ~stroke ~stroke_width =
  Buffer.add_string t.buf
    (Printf.sprintf "<g stroke=\"%s\" stroke-width=\"%g\">\n" stroke
       stroke_width);
  Netgraph.Graph.iter_edges g (fun u v ->
      let x1, y1 = project t points.(u) and x2, y2 = project t points.(v) in
      Buffer.add_string t.buf
        (Printf.sprintf "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>\n"
           x1 y1 x2 y2));
  Buffer.add_string t.buf "</g>\n"

let add_path t points path ~stroke ~stroke_width =
  match path with
  | [] | [ _ ] -> ()
  | _ ->
    let pts =
      String.concat " "
        (List.map
           (fun v ->
             let x, y = project t points.(v) in
             Printf.sprintf "%.1f,%.1f" x y)
           path)
    in
    Buffer.add_string t.buf
      (Printf.sprintf
         "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
          stroke-width=\"%g\"/>\n"
         pts stroke stroke_width)

let add_nodes t points ~style_of =
  Array.iteri
    (fun i p ->
      let s = style_of i in
      let x, y = project t p in
      match s.shape with
      | `Circle ->
        Buffer.add_string t.buf
          (Printf.sprintf
             "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%g\" fill=\"%s\"/>\n" x y
             s.size s.fill)
      | `Square ->
        Buffer.add_string t.buf
          (Printf.sprintf
             "<rect x=\"%.1f\" y=\"%.1f\" width=\"%g\" height=\"%g\" \
              fill=\"%s\"/>\n"
             (x -. s.size) (y -. s.size) (2. *. s.size) (2. *. s.size) s.fill))
    points

let add_label t pos text =
  let x, y = project t pos in
  Buffer.add_string t.buf
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" \
        font-family=\"sans-serif\">%s</text>\n"
       x y text)

let to_string t =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n<rect width=\"%d\" height=\"%d\" \
     fill=\"white\"/>\n%s</svg>\n"
    t.width t.height t.width t.height t.width t.height (Buffer.contents t.buf)

let write_file t file =
  let oc = open_out file in
  output_string oc (to_string t);
  close_out oc
