(** SVG rendering of embedded graphs.

    A minimal, dependency-free renderer for the structures this
    library builds: nodes drawn at their deployment positions (styled
    by role), edges as straight segments (the drawing is exactly the
    geometric embedding whose planarity the algorithms guarantee), and
    optional highlighted paths for routing illustrations.  This is how
    the repository regenerates pictures in the style of the paper's
    Figures 6 and 7. *)

type node_style = {
  fill : string;  (** CSS color *)
  shape : [ `Circle | `Square ];
  size : float;  (** radius / half-side in user units *)
}

val dominator_style : node_style
val connector_style : node_style
val dominatee_style : node_style

type t

(** [create ~width ~height ~world] starts a drawing of the rectangle
    [world] scaled to a [width] x [height] pixel canvas (y flipped so
    the origin is bottom-left, as in the paper's plots). *)
val create : width:int -> height:int -> world:Geometry.Bbox.t -> t

(** [add_edges t points g ~stroke ~stroke_width] draws every edge of
    [g] as a segment between its endpoints' positions. *)
val add_edges :
  t ->
  Geometry.Point.t array ->
  Netgraph.Graph.t ->
  stroke:string ->
  stroke_width:float ->
  unit

(** [add_path t points path ~stroke ~stroke_width] overlays a node
    path (e.g. a route) as a polyline. *)
val add_path :
  t ->
  Geometry.Point.t array ->
  int list ->
  stroke:string ->
  stroke_width:float ->
  unit

(** [add_nodes t points ~style_of] draws every node with the style
    chosen by [style_of]. *)
val add_nodes :
  t -> Geometry.Point.t array -> style_of:(int -> node_style) -> unit

(** [add_label t pos text] places a small text label. *)
val add_label : t -> Geometry.Point.t -> string -> unit

(** Serialize the accumulated drawing. *)
val to_string : t -> string

(** [write_file t file] saves the SVG. *)
val write_file : t -> string -> unit
