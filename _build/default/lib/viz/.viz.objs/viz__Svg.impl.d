lib/viz/svg.ml: Array Buffer Geometry List Netgraph Printf String
