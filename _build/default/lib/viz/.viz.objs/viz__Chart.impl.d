lib/viz/chart.ml: Buffer Float List Printf String
