lib/viz/chart.mli:
