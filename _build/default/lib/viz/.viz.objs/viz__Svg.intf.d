lib/viz/svg.mli: Geometry Netgraph
