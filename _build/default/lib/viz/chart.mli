(** Line charts in pure SVG.

    The experiment sweeps produce labelled series; this renders them
    in the style of the paper's Figures 8–12 (one panel, x axis =
    sweep parameter, one polyline per structure, legend) without any
    plotting dependency.  The benchmark harness uses it to regenerate
    the figures as images next to the numeric tables. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), in x order *)
}

(** [render ?width ?height ?colors ~title ~xlabel ~ylabel series] is a
    complete SVG document.  Axis ranges come from the data (with a
    small margin); ticks are chosen at round steps.  Colors cycle
    through [colors] (a default qualitative palette is provided).
    @raise Invalid_argument when no series has at least one point. *)
val render :
  ?width:int ->
  ?height:int ->
  ?colors:string list ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  string

(** [write_file file ...] renders straight to [file]. *)
val write_file :
  ?width:int ->
  ?height:int ->
  ?colors:string list ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  string ->
  unit
