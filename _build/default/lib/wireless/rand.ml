type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t = create (mix (bits64 t))

let float t bound =
  if bound <= 0. then invalid_arg "Rand.float: bound <= 0";
  (* 53 random bits mapped to [0, 1) *)
  let b = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float b /. 9007199254740992. *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rand.int: bound <= 0";
  (* rejection-free for our purposes: bias is negligible for
     bound << 2^63 *)
  let b = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem b (Int64.of_int bound))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let u1 = float t 1. in
  let u1 = if u1 = 0. then epsilon_float else u1 in
  let u2 = float t 1. in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
