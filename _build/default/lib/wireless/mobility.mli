(** Node mobility models.

    The paper assumes nodes are static "during a reasonable period of
    time" and leaves dynamic maintenance as future work; these models
    provide the motion workloads for studying exactly that (see
    {!Core.Maintenance} and the mobility example).  A model owns a
    mutable position array and advances it one time unit per step;
    every model keeps nodes inside the deployment square. *)

type t

(** Current positions (the array is owned by the model: it mutates on
    {!step}; copy it to keep a snapshot). *)
val positions : t -> Geometry.Point.t array

(** Advance every node by one time unit. *)
val step : t -> unit

(** [step_many t k] advances [k] time units. *)
val step_many : t -> int -> unit

(** Random waypoint: each node walks toward a uniformly chosen
    waypoint at a per-node speed drawn from [[min_speed, max_speed]];
    on arrival it draws a fresh waypoint and speed.  The standard ad
    hoc networking benchmark model. *)
val random_waypoint :
  Rand.t ->
  side:float ->
  min_speed:float ->
  max_speed:float ->
  init:Geometry.Point.t array ->
  t

(** Gauss–Markov: per-node velocity evolves as an AR(1) process with
    memory [alpha] in [[0, 1]] ([1] = straight lines, [0] = Brownian),
    mean speed [mean_speed].  Nodes bounce off the region border. *)
val gauss_markov :
  Rand.t ->
  side:float ->
  alpha:float ->
  mean_speed:float ->
  init:Geometry.Point.t array ->
  t

(** A fraction of nodes move (random waypoint), the rest stay put —
    the "mostly static sensor field with a few mobile collectors"
    workload.  [mobile] gives the moving fraction in [[0, 1]]. *)
val partial :
  Rand.t ->
  side:float ->
  mobile:float ->
  speed:float ->
  init:Geometry.Point.t array ->
  t
