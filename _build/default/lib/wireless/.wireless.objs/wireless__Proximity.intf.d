lib/wireless/proximity.mli: Geometry Netgraph
