lib/wireless/mobility.mli: Geometry Rand
