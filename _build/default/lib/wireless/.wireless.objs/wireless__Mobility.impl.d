lib/wireless/mobility.ml: Array Float Geometry Rand
