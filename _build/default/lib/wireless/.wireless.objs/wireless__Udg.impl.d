lib/wireless/udg.ml: Array Geometry List Netgraph Rand
