lib/wireless/proximity.ml: Array Delaunay Float Geometry List Netgraph
