lib/wireless/deploy.mli: Geometry Rand
