lib/wireless/rand.mli:
