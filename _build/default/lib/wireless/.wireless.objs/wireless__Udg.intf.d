lib/wireless/udg.mli: Geometry Netgraph Rand
