lib/wireless/deploy.ml: Array Float Geometry Netgraph Printf Rand Udg
