lib/wireless/rand.ml: Array Float Int64
