(** Flat proximity-graph baselines on the unit disk graph.

    These are the structures the paper compares against: the relative
    neighborhood graph and Gabriel graph (used by GPSR), the Yao graph
    (used by cone-based topology control), and [UDel], the Delaunay
    triangulation restricted to unit-length edges, which is the target
    the localized Delaunay construction approximates. *)

(** [rng_graph udg points] keeps a UDG edge [uv] when the open lune of
    [u, v] contains no other node — the relative neighborhood graph. *)
val rng_graph :
  Netgraph.Graph.t -> Geometry.Point.t array -> Netgraph.Graph.t

(** [gabriel_graph udg points] keeps a UDG edge [uv] when the open
    disk with diameter [uv] contains no other node. *)
val gabriel_graph :
  Netgraph.Graph.t -> Geometry.Point.t array -> Netgraph.Graph.t

(** [yao_graph udg points ~cones] adds, for every node and each of its
    [cones] equal-angle sectors, an (undirected) edge to the nearest
    UDG neighbor in the sector.  Ties break toward the smaller node
    id.  @raise Invalid_argument when [cones < 1]. *)
val yao_graph :
  Netgraph.Graph.t -> Geometry.Point.t array -> cones:int -> Netgraph.Graph.t

(** [udel points ~radius] is [Del(V) ∩ UDG(V)]: Delaunay edges of
    length at most [radius]. *)
val udel : Geometry.Point.t array -> radius:float -> Netgraph.Graph.t

(** [is_rng_edge points udg u v] checks the RNG empty-lune criterion
    for one UDG edge (used by tests and by the distributed protocol's
    local decisions). *)
val is_rng_edge :
  Geometry.Point.t array -> Netgraph.Graph.t -> int -> int -> bool

(** [is_gabriel_edge points udg u v] checks the Gabriel empty-disk
    criterion for one UDG edge. *)
val is_gabriel_edge :
  Geometry.Point.t array -> Netgraph.Graph.t -> int -> int -> bool
