module P = Geometry.Point

let uniform rng ~n ~side =
  Array.init n (fun _ ->
      P.make (Rand.float rng side) (Rand.float rng side))

let perturbed_grid rng ~n ~side ~jitter =
  let cols = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let step = side /. float_of_int cols in
  Array.init n (fun i ->
      let gx = float_of_int (i mod cols) +. 0.5 in
      let gy = float_of_int (i / cols) +. 0.5 in
      let dx = Rand.float rng (2. *. jitter) -. jitter in
      let dy = Rand.float rng (2. *. jitter) -. jitter in
      let clamp v = Float.max 0. (Float.min side v) in
      P.make (clamp ((gx *. step) +. dx)) (clamp ((gy *. step) +. dy)))

let clustered rng ~n ~side ~clusters ~spread =
  if clusters <= 0 then invalid_arg "Deploy.clustered: clusters <= 0";
  let centers =
    Array.init clusters (fun _ ->
        P.make (Rand.float rng side) (Rand.float rng side))
  in
  Array.init n (fun _ ->
      let c = centers.(Rand.int rng clusters) in
      let clamp v = Float.max 0. (Float.min side v) in
      P.make
        (clamp (c.x +. (spread *. Rand.gaussian rng)))
        (clamp (c.y +. (spread *. Rand.gaussian rng))))

let connected_uniform rng ~n ~side ~radius ~max_attempts =
  let rec go attempt =
    if attempt > max_attempts then
      failwith
        (Printf.sprintf
           "Deploy.connected_uniform: no connected instance in %d attempts \
            (n=%d side=%g radius=%g)"
           max_attempts n side radius)
    else
      let pts = uniform rng ~n ~side in
      let g = Udg.build pts ~radius in
      if Netgraph.Components.is_connected g then (pts, attempt)
      else go (attempt + 1)
  in
  go 1
