module P = Geometry.Point
module G = Netgraph.Graph

(* Any blocker of an RNG lune or Gabriel disk of edge (u, v) lies
   within |uv| <= radius of u, so scanning u's UDG neighbors sees
   every candidate. *)
let no_blocker udg points u v inside =
  List.for_all
    (fun w -> w = v || not (inside points.(u) points.(v) points.(w)))
    (G.neighbors udg u)

let is_rng_edge points udg u v =
  G.has_edge udg u v && no_blocker udg points u v Geometry.Circle.in_lune

let is_gabriel_edge points udg u v =
  G.has_edge udg u v && no_blocker udg points u v Geometry.Circle.in_diametral

let filter_edges udg keep =
  let g = G.create (G.node_count udg) in
  G.iter_edges udg (fun u v -> if keep u v then G.add_edge g u v);
  g

let rng_graph udg points = filter_edges udg (is_rng_edge points udg)
let gabriel_graph udg points = filter_edges udg (is_gabriel_edge points udg)

let yao_graph udg points ~cones =
  if cones < 1 then invalid_arg "Proximity.yao_graph: cones < 1";
  let n = G.node_count udg in
  let g = G.create n in
  let sector u v =
    let theta = P.angle_of (P.sub points.(v) points.(u)) in
    let theta = if theta < 0. then theta +. (2. *. Float.pi) else theta in
    let s = int_of_float (theta /. (2. *. Float.pi) *. float_of_int cones) in
    min s (cones - 1)
  in
  for u = 0 to n - 1 do
    let best = Array.make cones (-1) in
    List.iter
      (fun v ->
        let s = sector u v in
        let better =
          best.(s) = -1
          ||
          let db = P.dist2 points.(u) points.(best.(s)) in
          let dv = P.dist2 points.(u) points.(v) in
          dv < db || (dv = db && v < best.(s))
        in
        if better then best.(s) <- v)
      (G.neighbors udg u);
    Array.iter (fun v -> if v >= 0 then G.add_edge g u v) best
  done;
  g

let udel points ~radius =
  let t = Delaunay.Triangulation.triangulate points in
  let g = G.create (Array.length points) in
  List.iter
    (fun (u, v) ->
      if P.dist points.(u) points.(v) <= radius then G.add_edge g u v)
    (Delaunay.Triangulation.edges t);
  g
