(** Node deployment models.

    The paper's experiments place [n] nodes uniformly at random in a
    square and keep only connected instances.  Alongside that primary
    model we provide the perturbed grid and clustered deployments used
    in follow-up topology-control studies, so coverage and robustness
    experiments have contrasting workloads. *)

(** [uniform rng ~n ~side] draws [n] independent positions uniformly
    in the square [[0, side] x [0, side]]. *)
val uniform : Rand.t -> n:int -> side:float -> Geometry.Point.t array

(** [perturbed_grid rng ~n ~side ~jitter] places nodes on the
    [ceil (sqrt n)] grid and displaces each by uniform noise of
    amplitude [jitter] in each coordinate. *)
val perturbed_grid :
  Rand.t -> n:int -> side:float -> jitter:float -> Geometry.Point.t array

(** [clustered rng ~n ~side ~clusters ~spread] draws [clusters]
    uniform cluster centers and places nodes around centers with
    Gaussian spread — a hotspot workload. Positions are clamped into
    the square. *)
val clustered :
  Rand.t ->
  n:int ->
  side:float ->
  clusters:int ->
  spread:float ->
  Geometry.Point.t array

(** [connected_uniform rng ~n ~side ~radius ~max_attempts] redraws
    uniform deployments until the induced unit disk graph of range
    [radius] is connected, as the paper does.  Returns the points and
    the number of attempts used.
    @raise Failure when [max_attempts] deployments all come out
    disconnected. *)
val connected_uniform :
  Rand.t ->
  n:int ->
  side:float ->
  radius:float ->
  max_attempts:int ->
  Geometry.Point.t array * int
