(** Deterministic pseudo-random numbers (splitmix64).

    Experiments must be reproducible run-to-run and machine-to-machine,
    so the library carries its own small PRNG instead of the global
    [Random] state: a seed fully determines every deployment, and
    independent streams can be split off for parallel sweeps. *)

type t

(** [create seed] is a fresh generator. *)
val create : int64 -> t

(** [split t] derives an independent generator; the parent advances. *)
val split : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [float t bound] is uniform in [[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)
val float : t -> float -> float

(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [gaussian t] is standard-normal (Box–Muller). *)
val gaussian : t -> float

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
