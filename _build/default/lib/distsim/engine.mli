(** Synchronous message-passing simulator.

    Models the paper's communication setting: omni-directional
    antennas, so one transmission is a single message heard by every
    1-hop neighbor in the connectivity graph.  Protocols are state
    machines driven in rounds; a round delivers everything broadcast in
    the previous round, then lets every node react.  The engine counts
    transmissions per node and per message kind — these counters are
    exactly the "communication cost" curves of the paper's Figures 10
    and 12.

    The simulation is deterministic: nodes are stepped in id order and
    inboxes are sorted by sender id. *)

type 'msg delivery = { from : int; msg : 'msg }

(** Per-node view handed to the protocol each round. *)
type 'msg context = {
  me : int;
  round : int;  (** 0-based; round 0 has empty inboxes *)
  neighbors : int list;  (** 1-hop neighbors in the connectivity graph *)
  broadcast : 'msg -> unit;
      (** transmit once; heard by every neighbor next round *)
}

type ('state, 'msg) protocol = {
  init : int -> int list -> 'state;
      (** initial state from node id and neighbor list *)
  on_round : 'msg context -> 'state -> 'msg delivery list -> 'state;
      (** react to this round's inbox; may broadcast *)
}

type stats = {
  rounds : int;  (** rounds executed (including the initial round) *)
  sent : int array;  (** transmissions per node *)
  by_kind : (string * int) list;
      (** total transmissions per message kind, sorted by kind *)
}

val max_sent : stats -> int
val avg_sent : stats -> float
val total_sent : stats -> int

(** [merge s1 s2] adds the counters of two phases of a protocol stack
    (e.g. clustering then planarization) into one account.
    @raise Invalid_argument on mismatched node counts. *)
val merge : stats -> stats -> stats

(** [run ?max_rounds ~classify graph protocol] executes the protocol
    until a round in which no node transmits (quiescence), or until
    [max_rounds] (default [4 * n + 16]) rounds have run — protocols in
    this library quiesce in O(1) rounds, so hitting the cap signals a
    bug.  [classify] names each message's kind for the per-kind
    counters.  Returns final per-node states and the stats.
    @raise Failure when [max_rounds] is exceeded. *)
val run :
  ?max_rounds:int ->
  classify:('msg -> string) ->
  Netgraph.Graph.t ->
  ('state, 'msg) protocol ->
  'state array * stats
