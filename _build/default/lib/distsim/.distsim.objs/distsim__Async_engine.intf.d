lib/distsim/async_engine.mli: Netgraph
