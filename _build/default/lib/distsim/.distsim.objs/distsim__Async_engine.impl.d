lib/distsim/async_engine.ml: Array List Netgraph
