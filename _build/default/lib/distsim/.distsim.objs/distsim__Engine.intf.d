lib/distsim/engine.mli: Netgraph
