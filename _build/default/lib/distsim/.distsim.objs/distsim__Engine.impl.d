lib/distsim/engine.ml: Array Hashtbl List Netgraph Option Printf
