type t = { xmin : float; ymin : float; xmax : float; ymax : float }

let make ~xmin ~ymin ~xmax ~ymax = { xmin; ymin; xmax; ymax }

let of_points = function
  | [] -> invalid_arg "Bbox.of_points: empty list"
  | (p : Point.t) :: rest ->
    List.fold_left
      (fun b (q : Point.t) ->
        {
          xmin = Float.min b.xmin q.x;
          ymin = Float.min b.ymin q.y;
          xmax = Float.max b.xmax q.x;
          ymax = Float.max b.ymax q.y;
        })
      { xmin = p.x; ymin = p.y; xmax = p.x; ymax = p.y }
      rest

let width b = b.xmax -. b.xmin
let height b = b.ymax -. b.ymin
let center b = Point.make ((b.xmin +. b.xmax) /. 2.) ((b.ymin +. b.ymax) /. 2.)

let contains b (p : Point.t) =
  b.xmin <= p.x && p.x <= b.xmax && b.ymin <= p.y && p.y <= b.ymax

let expand m b =
  { xmin = b.xmin -. m; ymin = b.ymin -. m; xmax = b.xmax +. m; ymax = b.ymax +. m }

let union b1 b2 =
  {
    xmin = Float.min b1.xmin b2.xmin;
    ymin = Float.min b1.ymin b2.ymin;
    xmax = Float.max b1.xmax b2.xmax;
    ymax = Float.max b1.ymax b2.ymax;
  }

let corners b =
  ( Point.make b.xmin b.ymin,
    Point.make b.xmax b.ymin,
    Point.make b.xmax b.ymax,
    Point.make b.xmin b.ymax )

let pp fmt b =
  Format.fprintf fmt "bbox[%g..%g x %g..%g]" b.xmin b.xmax b.ymin b.ymax
