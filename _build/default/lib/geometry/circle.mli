(** Circles, circumcircles and the empty-region shapes of proximity
    graphs (diametral disks for Gabriel edges, lunes for relative
    neighborhood edges). *)

type t = { center : Point.t; radius : float }

val make : Point.t -> float -> t

(** [contains ?strict c p] tests disk membership.  With [strict]
    (default [false]) the boundary is excluded. *)
val contains : ?strict:bool -> t -> Point.t -> bool

(** [circumcircle a b c] is the circle through three non-collinear
    points, or [None] when they are collinear. *)
val circumcircle : Point.t -> Point.t -> Point.t -> t option

(** [diametral a b] is the circle with segment [a b] as diameter — the
    empty region of a Gabriel edge. *)
val diametral : Point.t -> Point.t -> t

(** [in_diametral a b p] holds when [p] lies strictly inside the
    diametral circle of [a b], computed from the equivalent angle
    criterion (angle [a p b] obtuse) to avoid constructing a center. *)
val in_diametral : Point.t -> Point.t -> Point.t -> bool

(** [in_lune a b p] holds when [p] lies strictly inside the lune of
    [a b] — the intersection of the two disks centered at [a] and [b]
    with radius [dist a b]; the empty region of an RNG edge. *)
val in_lune : Point.t -> Point.t -> Point.t -> bool

(** [intersects c1 c2] holds when the two closed disks overlap. *)
val intersects : t -> t -> bool

val area : t -> float
val pp : Format.formatter -> t -> unit
