(** Planar points and basic vector arithmetic.

    All geometric structures in this library are built over immutable
    two-dimensional points with [float] coordinates.  Points double as
    vectors: the vector from [p] to [q] is [sub q p]. *)

type t = { x : float; y : float }

(** [make x y] is the point [(x, y)]. *)
val make : float -> float -> t

(** The origin [(0, 0)]. *)
val origin : t

(** Component-wise addition. *)
val add : t -> t -> t

(** [sub p q] is the vector [p - q]. *)
val sub : t -> t -> t

(** [scale k p] multiplies both coordinates by [k]. *)
val scale : float -> t -> t

(** [neg p] is [scale (-1.) p]. *)
val neg : t -> t

(** Dot product, treating points as vectors from the origin. *)
val dot : t -> t -> float

(** Two-dimensional cross product (the z-component of the 3-d cross
    product); positive when the second vector lies counterclockwise of
    the first. *)
val cross : t -> t -> float

(** Euclidean distance. *)
val dist : t -> t -> float

(** Squared Euclidean distance; avoids the square root when only
    comparisons are needed. *)
val dist2 : t -> t -> float

(** Euclidean norm of the vector from the origin. *)
val norm : t -> float

(** Squared norm. *)
val norm2 : t -> float

(** [midpoint p q] is the point halfway between [p] and [q]. *)
val midpoint : t -> t -> t

(** [lerp p q t] linearly interpolates from [p] (at [t = 0]) to [q]
    (at [t = 1]). *)
val lerp : t -> t -> float -> t

(** [angle_of v] is [atan2 v.y v.x], in [(-pi, pi]]. *)
val angle_of : t -> float

(** [angle a b c] is the unsigned angle at vertex [b] of the path
    [a-b-c], in [[0, pi]]. *)
val angle : t -> t -> t -> float

(** [rotate theta p] rotates [p] counterclockwise around the origin. *)
val rotate : float -> t -> t

(** [rotate_about c theta p] rotates [p] counterclockwise around [c]. *)
val rotate_about : t -> float -> t -> t

(** Structural equality on coordinates. *)
val equal : t -> t -> bool

(** [close ?eps p q] holds when the coordinates differ by at most
    [eps] (default [1e-9]) in each dimension. *)
val close : ?eps:float -> t -> t -> bool

(** Lexicographic comparison, by [x] then [y]. *)
val compare : t -> t -> int

(** Pretty-printer, e.g. [(1.5, -2)]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
