lib/geometry/predicates.mli: Point
