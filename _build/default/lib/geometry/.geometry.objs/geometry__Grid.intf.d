lib/geometry/grid.mli: Point
