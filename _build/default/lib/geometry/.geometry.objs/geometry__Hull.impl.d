lib/geometry/hull.ml: Array List Point Predicates Segment
