lib/geometry/grid.ml: Array Float Hashtbl List Point
