lib/geometry/segment.mli: Format Point
