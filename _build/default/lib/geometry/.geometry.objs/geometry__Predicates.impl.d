lib/geometry/predicates.ml: Float List Point
