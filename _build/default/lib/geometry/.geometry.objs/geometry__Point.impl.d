lib/geometry/point.ml: Float Format
