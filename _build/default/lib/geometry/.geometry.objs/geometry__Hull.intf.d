lib/geometry/hull.mli: Point
