lib/geometry/bbox.mli: Format Point
