lib/geometry/bbox.ml: Float Format List Point
