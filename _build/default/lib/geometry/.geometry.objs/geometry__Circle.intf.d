lib/geometry/circle.mli: Format Point
