lib/geometry/segment.ml: Float Format Point Predicates
