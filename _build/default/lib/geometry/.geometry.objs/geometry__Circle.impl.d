lib/geometry/circle.ml: Float Format Point
