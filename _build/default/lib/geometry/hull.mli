(** Convex hulls (Andrew's monotone chain). *)

(** [convex_hull pts] is the convex hull of [pts] in counterclockwise
    order, starting from the lexicographically smallest point.
    Collinear points on hull edges are dropped; duplicates are
    ignored.  Degenerate inputs (fewer than 3 distinct points, or all
    collinear) return the distinct extreme points in order. *)
val convex_hull : Point.t list -> Point.t list

(** [is_convex poly] holds when the polygon (given in order) is convex
    and counterclockwise. *)
val is_convex : Point.t list -> bool

(** [contains_point poly p] tests membership of [p] in the closed
    convex polygon [poly] given in ccw order. *)
val contains_point : Point.t list -> Point.t -> bool

(** Polygon area (shoelace), positive for counterclockwise order. *)
val signed_area : Point.t list -> float
