(** Uniform spatial hash over an indexed point set.

    Building a unit disk graph naively costs O(n^2) distance tests; a
    grid with cell size equal to the radius reduces that to inspecting
    the 3x3 block of cells around each point, which is what a real
    wireless simulator does for neighbor discovery. *)

type t

(** [create ~cell_size points] indexes [points] (identified by their
    array index) into square cells of side [cell_size].
    @raise Invalid_argument when [cell_size <= 0]. *)
val create : cell_size:float -> Point.t array -> t

(** [neighbors_within t i r] are the indices [j <> i] with
    [dist points.(i) points.(j) <= r].  Requires [r <= cell_size]
    (cells further than one ring are not inspected).
    @raise Invalid_argument when [r > cell_size]. *)
val neighbors_within : t -> int -> float -> int list

(** [points_within t p r] are all indices within distance [r] of an
    arbitrary query point [p] (the point itself included when it is in
    the set).  Inspects [ceil (r / cell_size)] rings of cells, so any
    radius is allowed. *)
val points_within : t -> Point.t -> float -> int list

(** Number of indexed points. *)
val size : t -> int

(** The indexed points, in index order. *)
val points : t -> Point.t array
