(** Geometric predicates.

    The predicates below are the decision procedures everything else in
    the library leans on: triangle orientation, the in-circle test that
    defines Delaunay triangulations, and point/segment relations.  They
    are computed with compensated floating-point evaluation: a fast
    straightforward evaluation is accepted only when it clears an error
    bound derived from the magnitudes involved, otherwise the sign is
    recomputed with extended precision via two-sum/two-product expansion
    (a small slice of Shewchuk's adaptive predicates, enough for the
    coordinate magnitudes used in wireless deployments). *)

type orientation = Ccw | Cw | Collinear

(** [orient2d a b c] is the orientation of the triangle [a b c]:
    [Ccw] when [c] lies to the left of the directed line [a -> b]. *)
val orient2d : Point.t -> Point.t -> Point.t -> orientation

(** Signed doubled area of triangle [a b c]; positive for [Ccw]. *)
val orient2d_det : Point.t -> Point.t -> Point.t -> float

(** [incircle a b c d] is [true] when [d] lies strictly inside the
    circle through [a], [b], [c].  The triangle [a b c] may have either
    orientation; the test is normalized internally. *)
val incircle : Point.t -> Point.t -> Point.t -> Point.t -> bool

(** [incircle_det a b c d] is the raw 4x4 determinant, positive when
    [d] is inside the circumcircle of the ccw triangle [a b c]. *)
val incircle_det : Point.t -> Point.t -> Point.t -> Point.t -> float

(** [collinear a b c] holds when the three points lie on one line
    (up to the predicate's exact sign computation). *)
val collinear : Point.t -> Point.t -> Point.t -> bool

(** [between a b p] holds when [p] lies on the closed segment [a b]
    (collinear and within the bounding box). *)
val between : Point.t -> Point.t -> Point.t -> bool
