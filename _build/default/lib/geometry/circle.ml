type t = { center : Point.t; radius : float }

let make center radius = { center; radius }

let contains ?(strict = false) c p =
  let d2 = Point.dist2 c.center p in
  let r2 = c.radius *. c.radius in
  if strict then d2 < r2 else d2 <= r2

let circumcircle (a : Point.t) (b : Point.t) (c : Point.t) =
  let d =
    2.
    *. ((a.x *. (b.y -. c.y)) +. (b.x *. (c.y -. a.y)) +. (c.x *. (a.y -. b.y)))
  in
  if Float.abs d < 1e-300 then None
  else
    let a2 = Point.norm2 a and b2 = Point.norm2 b and c2 = Point.norm2 c in
    let ux =
      ((a2 *. (b.y -. c.y)) +. (b2 *. (c.y -. a.y)) +. (c2 *. (a.y -. b.y)))
      /. d
    in
    let uy =
      ((a2 *. (c.x -. b.x)) +. (b2 *. (a.x -. c.x)) +. (c2 *. (b.x -. a.x)))
      /. d
    in
    let center = Point.make ux uy in
    Some { center; radius = Point.dist center a }

let diametral a b = { center = Point.midpoint a b; radius = Point.dist a b /. 2. }

let in_diametral a b p =
  (* p is strictly inside the circle with diameter ab iff the angle
     a-p-b is strictly obtuse, i.e. (a - p) . (b - p) < 0. *)
  if Point.equal p a || Point.equal p b then false
  else Point.dot (Point.sub a p) (Point.sub b p) < 0.

let in_lune a b p =
  if Point.equal p a || Point.equal p b then false
  else
    let d2 = Point.dist2 a b in
    Point.dist2 a p < d2 && Point.dist2 b p < d2

let intersects c1 c2 = Point.dist c1.center c2.center <= c1.radius +. c2.radius
let area c = Float.pi *. c.radius *. c.radius

let pp fmt c =
  Format.fprintf fmt "circle(center=%a, r=%g)" Point.pp c.center c.radius
