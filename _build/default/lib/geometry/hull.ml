let convex_hull pts =
  let pts = List.sort_uniq Point.compare pts in
  match pts with
  | [] | [ _ ] | [ _; _ ] -> pts
  | _ ->
    let clockwise_turn a b c =
      match Predicates.orient2d a b c with Predicates.Ccw -> false | _ -> true
    in
    let half pts =
      List.fold_left
        (fun chain p ->
          let rec pop = function
            | b :: a :: rest when clockwise_turn a b p -> pop (a :: rest)
            | chain -> p :: chain
          in
          pop chain)
        [] pts
    in
    let lower = half pts in
    let upper = half (List.rev pts) in
    (* Each half-chain is accumulated in reverse and includes both
       endpoints; drop the duplicated endpoints when concatenating. *)
    let drop_last l = List.rev (List.tl (List.rev l)) in
    List.rev (drop_last lower) @ List.rev (drop_last upper)

let is_convex poly =
  let n = List.length poly in
  if n < 3 then false
  else
    let arr = Array.of_list poly in
    let ok = ref true in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) and c = arr.((i + 2) mod n) in
      if Predicates.orient2d a b c = Predicates.Cw then ok := false
    done;
    !ok

let contains_point poly p =
  let n = List.length poly in
  if n = 0 then false
  else if n = 1 then Point.equal (List.hd poly) p
  else if n = 2 then
    Segment.contains (Segment.make (List.nth poly 0) (List.nth poly 1)) p
  else
    let arr = Array.of_list poly in
    let inside = ref true in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) in
      if Predicates.orient2d a b p = Predicates.Cw then inside := false
    done;
    !inside

let signed_area poly =
  match poly with
  | [] | [ _ ] | [ _; _ ] -> 0.
  | first :: _ ->
    let rec go acc = function
      | (a : Point.t) :: (b :: _ as rest) ->
        go (acc +. Point.cross a b) rest
      | [ (last : Point.t) ] -> acc +. Point.cross last first
      | [] -> acc
    in
    go 0. poly /. 2.
