(** Line segments and intersection tests.

    Planarity of the constructed network topologies is defined
    geometrically (no two links cross), so segment intersection is the
    workhorse predicate of the planarity checker and of the
    LDel planarization step. *)

type t = { a : Point.t; b : Point.t }

val make : Point.t -> Point.t -> t

(** Segment length. *)
val length : t -> float

val midpoint : t -> Point.t

(** [contains s p] holds when [p] lies on the closed segment. *)
val contains : t -> Point.t -> bool

(** [properly_intersect s1 s2] holds when the two open segments cross
    at a single interior point.  Sharing an endpoint does not count,
    nor does mere touching of an endpoint against the other segment's
    interior. *)
val properly_intersect : t -> t -> bool

(** [intersect s1 s2] holds when the closed segments share at least one
    point (crossing, touching, overlap, shared endpoint). *)
val intersect : t -> t -> bool

(** [intersection_point s1 s2] is the crossing point when the segments
    properly intersect. *)
val intersection_point : t -> t -> Point.t option

(** [dist_to_point s p] is the Euclidean distance from [p] to the
    closed segment. *)
val dist_to_point : t -> Point.t -> float

val pp : Format.formatter -> t -> unit
