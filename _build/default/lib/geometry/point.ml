type t = { x : float; y : float }

let make x y = { x; y }
let origin = { x = 0.; y = 0. }
let add p q = { x = p.x +. q.x; y = p.y +. q.y }
let sub p q = { x = p.x -. q.x; y = p.y -. q.y }
let scale k p = { x = k *. p.x; y = k *. p.y }
let neg p = scale (-1.) p
let dot p q = (p.x *. q.x) +. (p.y *. q.y)
let cross p q = (p.x *. q.y) -. (p.y *. q.x)

let dist2 p q =
  let dx = p.x -. q.x and dy = p.y -. q.y in
  (dx *. dx) +. (dy *. dy)

let dist p q = sqrt (dist2 p q)
let norm2 p = dot p p
let norm p = sqrt (norm2 p)
let midpoint p q = { x = (p.x +. q.x) /. 2.; y = (p.y +. q.y) /. 2. }
let lerp p q t = add p (scale t (sub q p))
let angle_of v = atan2 v.y v.x

let angle a b c =
  let u = sub a b and v = sub c b in
  let d = dot u v /. (norm u *. norm v) in
  let d = if d > 1. then 1. else if d < -1. then -1. else d in
  acos d

let rotate theta p =
  let c = cos theta and s = sin theta in
  { x = (c *. p.x) -. (s *. p.y); y = (s *. p.x) +. (c *. p.y) }

let rotate_about c theta p = add c (rotate theta (sub p c))
let equal p q = p.x = q.x && p.y = q.y

let close ?(eps = 1e-9) p q =
  Float.abs (p.x -. q.x) <= eps && Float.abs (p.y -. q.y) <= eps

let compare p q =
  let c = Float.compare p.x q.x in
  if c <> 0 then c else Float.compare p.y q.y

let pp fmt p = Format.fprintf fmt "(%g, %g)" p.x p.y
let to_string p = Format.asprintf "%a" pp p
