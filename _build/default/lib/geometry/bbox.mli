(** Axis-aligned bounding boxes. *)

type t = { xmin : float; ymin : float; xmax : float; ymax : float }

val make : xmin:float -> ymin:float -> xmax:float -> ymax:float -> t

(** [of_points pts] is the tightest box containing all points.
    @raise Invalid_argument on an empty list. *)
val of_points : Point.t list -> t

val width : t -> float
val height : t -> float
val center : t -> Point.t
val contains : t -> Point.t -> bool

(** [expand margin b] grows the box by [margin] on every side. *)
val expand : float -> t -> t

(** Smallest box containing both arguments. *)
val union : t -> t -> t

val corners : t -> Point.t * Point.t * Point.t * Point.t
val pp : Format.formatter -> t -> unit
