module G = Netgraph.Graph

type t = {
  points : Geometry.Point.t array;
  radius : float;
  udg : G.t;
  cds : Cds.t;
  ldel_icds : Ldel.t;
  ldel_icds_g : G.t;
  ldel_icds' : G.t;
}

let add_dominatee_links udg roles g =
  let g = G.copy g in
  Array.iteri
    (fun u r ->
      if r = Mis.Dominatee then
        List.iter (fun d -> G.add_edge g u d) (Mis.dominators_of udg roles u))
    roles;
  g

let build ?priority points ~radius =
  let udg = Wireless.Udg.build points ~radius in
  let cds = Cds.of_udg ?priority udg in
  let ldel_icds = Ldel.build cds.Cds.icds points ~radius in
  let ldel_icds_g = ldel_icds.Ldel.planar in
  let ldel_icds' =
    add_dominatee_links udg cds.Cds.roles ldel_icds_g
  in
  { points; radius; udg; cds; ldel_icds; ldel_icds_g; ldel_icds' }

let ldel_full t = Ldel.build t.udg t.points ~radius:t.radius

let structures t =
  let rng = Wireless.Proximity.rng_graph t.udg t.points in
  let gg = Wireless.Proximity.gabriel_graph t.udg t.points in
  let ldel_v = (ldel_full t).Ldel.planar in
  [
    ("UDG", t.udg, `Spans_all);
    ("RNG", rng, `Spans_all);
    ("GG", gg, `Spans_all);
    ("LDel", ldel_v, `Spans_all);
    ("CDS", t.cds.Cds.cds, `Backbone_only);
    ("CDS'", t.cds.Cds.cds', `Spans_all);
    ("ICDS", t.cds.Cds.icds, `Backbone_only);
    ("ICDS'", t.cds.Cds.icds', `Spans_all);
    ("LDel(ICDS)", t.ldel_icds_g, `Backbone_only);
    ("LDel(ICDS')", t.ldel_icds', `Spans_all);
  ]
