(** The paper's theoretical constants, computed.

    Lemmas 1–8 bound everything by explicit constants; the paper twice
    notes the constants are loose ("the bounds on C_k can be improved
    by a tighter analysis", "Notice that although 5C_{2.5} + C_{3.5}
    is very large here, the bound can be reduced...").  This module
    evaluates the printed bounds so the benchmark harness can put
    theory and measurement side by side. *)

(** [dominators_within k] is Lemma 2's [C_k]: the number of dominators
    within [k] transmission radii of any node is at most
    [4 (k + 1/2)²] (disjoint half-unit disks packed in a disk of
    radius [k + 1/2]). *)
val dominators_within : float -> int

(** Lemma 1: a dominatee is adjacent to at most 5 dominators. *)
val max_dominators_per_dominatee : int

(** At most 2 connectors are elected per two-hop dominator pair (the
    lune argument). *)
val max_connectors_two_hop_pair : int

(** At most 25 connectors can arise per three-hop ordered pair (5
    first-leg candidates, each triggering at most 5 second-leg). *)
val max_connectors_three_hop_pair : int

(** Lemma 5: the hop stretch constant — a path of [h] hops maps to at
    most [3h + 2] backbone hops. *)
val hop_stretch : int

(** Lemma 6: the length stretch constant — backbone length is at most
    [6 len + 5 R] (paper: constant 6 "with an additional constant"). *)
val length_stretch : int

(** Lemma 7's hop bound for one ICDS link routed in LDel(ICDS):
    [5 C_{2.5} + C_{3.5}] — the paper's admittedly "very large" bound. *)
val ldel_link_hops : int

(** Lemma 8: the ICDS degree bound [5 C_2 + C_3]. *)
val icds_degree : int

(** Keil–Gutwin: the Delaunay triangulation's length stretch factor
    [4 √3 π / 9 ≈ 2.42], which [LDel] inherits on unit disk graphs
    (times the paper's constant). *)
val delaunay_stretch : float
