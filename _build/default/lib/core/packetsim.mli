(** Packet-level routing on the message-passing simulator.

    {!Routing} computes paths; this module actually ships packets:
    every forwarding decision is made by the current holder inside
    {!Distsim.Engine}, from its own neighbor table and the packet
    header, one transmission per hop.  Because the GPSR forwarding
    logic is the same {!Routing.gfg_step} automaton, the traversed
    path equals the centrally computed route exactly (tested) — this
    is the "run GPSR on the planar backbone" deployment the paper
    describes, with the simulator counting every radio transmission.

    Unicast over an omni-directional radio is modeled as a broadcast
    carrying the intended next hop; neighbors that are not named
    discard the packet but still physically received it, which is why
    transmissions — not receptions — are the cost metric. *)

type result = {
  delivered : bool;
  path : int list;  (** nodes that held the packet, in order *)
  transmissions : int;  (** one per forwarding hop *)
  rounds : int;  (** simulator rounds until quiescence *)
}

(** [gpsr g points ~src ~dst] ships one packet with greedy + perimeter
    forwarding over [g] (planar for the delivery guarantee).  Returns
    the observed trajectory. *)
val gpsr :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int -> result

(** [greedy g points ~src ~dst] ships one packet with plain greedy
    forwarding (drops at local minima). *)
val greedy :
  Netgraph.Graph.t -> Geometry.Point.t array -> src:int -> dst:int -> result

(** [many g points ~pairs rng ~router] ships packets for [pairs]
    random source/destination pairs in one shared simulation-per-pair
    and aggregates delivery and cost — the workload view of routing
    overhead.  [router] selects the forwarding discipline. *)
val many :
  Netgraph.Graph.t ->
  Geometry.Point.t array ->
  pairs:int ->
  Wireless.Rand.t ->
  router:[ `Gpsr | `Greedy ] ->
  int * int * float
(** returns (delivered, pairs, average transmissions per delivered packet) *)
