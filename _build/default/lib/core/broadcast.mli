(** Network-wide broadcast — the paper's motivating application.

    Section I motivates the backbone with the cost of flooding: "the
    simplest routing method is to flood the message, which not only
    wastes the rare resources of wireless nodes, but also diminishes
    the throughput of the network".  This module runs both options as
    actual protocols on the message-passing simulator and counts
    transmissions:

    - {b blind flooding}: every node retransmits the first copy it
      hears — n transmissions, always;
    - {b backbone broadcast}: only dominators and connectors
      retransmit; dominatees just listen.  Every node is adjacent to a
      dominator, so coverage is preserved while transmissions drop to
      the backbone size (a constant fraction independent of density);
    - {b RNG-relay}: the neighbor-elimination style of the cited RNG
      broadcasting work — a node retransmits only if some RNG-neighbor
      would otherwise miss the packet (approximated by: retransmit iff
      it has an RNG neighbor from which it did not hear the packet). *)

type outcome = {
  reached : bool array;  (** per node: heard the packet *)
  transmissions : int;  (** total sends, the energy cost *)
  rounds : int;  (** latency in synchronous rounds *)
}

(** Fraction of nodes reached. *)
val coverage : outcome -> float

(** [flood udg ~source] — blind flooding. *)
val flood : Netgraph.Graph.t -> source:int -> outcome

(** [backbone_broadcast udg cds ~source] — only backbone nodes (and
    the source itself) relay. *)
val backbone_broadcast : Netgraph.Graph.t -> Cds.t -> source:int -> outcome

(** [rng_relay udg points ~source] — neighbor-elimination relay on
    the relative neighborhood graph. *)
val rng_relay :
  Netgraph.Graph.t -> Geometry.Point.t array -> source:int -> outcome
