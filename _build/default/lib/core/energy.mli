(** Network lifetime under the paper's power model.

    The backbone exists to save energy, but it also concentrates load:
    dominators and connectors relay everyone's traffic and die first.
    This module simulates periodic data gathering to a sink under the
    power-attenuation model (transmitting over distance [d] costs
    [d^beta], Section I) and measures network lifetime, comparing:

    - [`Static] — the paper's smallest-ID backbone, rebuilt only when
      a node dies (the minimum needed to keep routing);
    - [`Energy_aware] — the same construction, but reclustered every
      [rotation] epochs with priority given to the nodes with the most
      remaining energy, so the clusterhead burden rotates.  This uses
      the same greedy-MIS machinery (just a different total order), so
      every structural guarantee is untouched.

    Clusterhead rotation is the classic remedy the clustering
    literature prescribes; here it falls out of one [priority]
    argument. *)

type policy = Static | Energy_aware of int  (** rotation period, epochs *)

type report = {
  first_death : int option;  (** epoch of the first node death *)
  deaths : (int * int) list;  (** (epoch, node), chronological *)
  epochs_run : int;
  attempted : int;  (** reports attempted (alive sensors x epochs) *)
  delivered : int;  (** reports that reached the sink *)
  spent : float array;  (** energy spent per node *)
}

(** [run points ~radius ~sink ~policy ~epochs ~battery ~beta]
    simulates [epochs] rounds of every-sensor-reports-to-sink.  Each
    transmission over distance [d] debits [d ** beta] from the
    sender; a node at or below zero battery is dead (it stops
    forwarding and reporting).  The sink never dies.  Stops early if
    the alive network around the sink empties.
    @raise Invalid_argument when [sink] is out of range or parameters
    are non-positive. *)
val run :
  Geometry.Point.t array ->
  radius:float ->
  sink:int ->
  policy:policy ->
  epochs:int ->
  battery:float ->
  beta:float ->
  report

(** Fraction of attempted reports delivered. *)
val delivery_ratio : report -> float
