let dominators_within k =
  (* area argument: disjoint disks of radius 1/2 centered at
     dominators, all inside a disk of radius k + 1/2 *)
  let r = k +. 0.5 in
  int_of_float (Float.ceil (r *. r /. 0.25))

let max_dominators_per_dominatee = 5
let max_connectors_two_hop_pair = 2
let max_connectors_three_hop_pair = 25
let hop_stretch = 3
let length_stretch = 6
let ldel_link_hops = (5 * dominators_within 2.5) + dominators_within 3.5
let icds_degree = (5 * dominators_within 2.) + dominators_within 3.
let delaunay_stretch = 4. *. sqrt 3. *. Float.pi /. 9.
