module G = Netgraph.Graph

type role = Dominator | Dominatee

type color = White | Black (* dominator *) | Gray (* dominatee *)

let compute_with_priority g ~priority =
  let n = G.node_count g in
  let color = Array.make n White in
  let better u v =
    let pu = priority u and pv = priority v in
    pu < pv || (pu = pv && u < v)
  in
  (* Iterate the rule to fixpoint.  Each pass blackens every white
     node that currently beats all of its white neighbors, then grays
     their white neighbors; at least one white node (the global
     minimum among whites) is decided per pass, so this terminates. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let winners = ref [] in
    for u = 0 to n - 1 do
      if
        color.(u) = White
        && List.for_all
             (fun v -> color.(v) <> White || better u v)
             (G.neighbors g u)
      then winners := u :: !winners
    done;
    List.iter
      (fun u ->
        color.(u) <- Black;
        changed := true;
        List.iter
          (fun v -> if color.(v) = White then color.(v) <- Gray)
          (G.neighbors g u))
      !winners
  done;
  Array.map
    (function
      | Black -> Dominator
      | Gray -> Dominatee
      | White -> assert false (* fixpoint colors every node *))
    color

let compute g = compute_with_priority g ~priority:(fun u -> u)

let dominators roles =
  let acc = ref [] in
  Array.iteri (fun u r -> if r = Dominator then acc := u :: !acc) roles;
  List.rev !acc

let dominators_of g roles u =
  if roles.(u) = Dominator then []
  else List.filter (fun v -> roles.(v) = Dominator) (G.neighbors g u)

let two_hop_dominators g roles u =
  let one_hop = G.neighbors g u in
  let at_two = Hashtbl.create 16 in
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          if w <> u && (not (G.has_edge g u w)) && roles.(w) = Dominator then
            Hashtbl.replace at_two w ())
        (G.neighbors g v))
    one_hop;
  List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) at_two [])

let is_independent g roles =
  G.fold_edges g
    (fun acc u v -> acc && not (roles.(u) = Dominator && roles.(v) = Dominator))
    true

let is_dominating g roles =
  let n = G.node_count g in
  let ok = ref true in
  for u = 0 to n - 1 do
    if
      roles.(u) = Dominatee
      && not (List.exists (fun v -> roles.(v) = Dominator) (G.neighbors g u))
    then ok := false
  done;
  !ok

(* For a maximal independent set the two conditions coincide, but the
   test-suite asserts them separately. *)
let is_maximal = is_dominating
