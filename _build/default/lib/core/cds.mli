(** Backbone structures: CDS, CDS′, ICDS, ICDS′.

    From the clustering and the connector elections the paper derives
    four graphs, all on the full node set:

    - [CDS]: the backbone proper — exactly the dominator–connector
      links installed by Algorithm 1.  Bounded degree, sparse, hop- and
      length-spanner between backbone nodes, but not planar in general.
    - [CDS′]: CDS plus an edge from every dominatee to each of its
      dominators — the structure whose hop/length stretch the paper
      measures (Lemmas 5 and 6).
    - [ICDS]: the unit disk graph induced on the backbone nodes
      (dominators and connectors): every UDG link between backbone
      nodes.  CDS ⊆ ICDS.
    - [ICDS′]: ICDS plus the dominatee–dominator edges. *)

type t = {
  roles : Mis.role array;
  connectors : Connectors.result;
  backbone : bool array;  (** dominator or connector *)
  cds : Netgraph.Graph.t;
  cds' : Netgraph.Graph.t;
  icds : Netgraph.Graph.t;
  icds' : Netgraph.Graph.t;
}

(** [build udg roles connectors] assembles all four graphs. *)
val build : Netgraph.Graph.t -> Mis.role array -> Connectors.result -> t

(** Convenience: cluster, elect connectors and assemble in one call.
    [priority] overrides the clustering order (smaller wins; default
    the node id, the paper's smallest-ID rule) — used by alternative
    clusterings and by {!Maintenance} to keep existing dominators. *)
val of_udg : ?priority:(int -> int) -> Netgraph.Graph.t -> t

(** Backbone node ids, increasing. *)
val backbone_nodes : t -> int list

(** [dominator_of t u] is [u]'s smallest-id dominator when [u] is a
    dominatee, or [u] itself when it is a backbone node.  This is the
    gateway used by hierarchical routing. *)
val dominator_of : t -> Netgraph.Graph.t -> int -> int
