(** Dynamic maintenance of the backbone under node movement.

    The paper leaves "dynamic updating of the planar backbone" as
    future work, arguing that the O(1)-messages-per-node construction
    makes periodic refresh affordable and that the logical backbone
    stays valid as long as none of its links stretch out of range.
    This module implements the refresh policy that makes periodic
    reconstruction cheap in practice: {b stability-first
    reclustering}.  When the topology is rebuilt, the clustering runs
    with a priority that favors the incumbent dominators, so a node
    keeps its clusterhead role unless movement actually invalidated it
    (two incumbents colliding, or a region losing coverage).  Role
    flapping — the operational cost of clustering in mobile networks —
    drops sharply compared to re-running the raw smallest-ID rule,
    while every guarantee (valid MIS, connected CDS, planar backbone)
    is preserved because the rule is still a greedy MIS, just under a
    different order. *)

type stats = {
  role_changes : int;  (** nodes whose dominator/dominatee role flipped *)
  backbone_changes : int;  (** nodes entering or leaving the backbone *)
  edge_changes : int;
      (** symmetric difference between the old and new planar
          backbone+links structure (LDel(ICDS′)) *)
  links_broken : int;
      (** links of the previous LDel(ICDS′) whose endpoints moved out
          of range — the trigger for refreshing *)
}

(** [needs_refresh prev positions] counts the previous structure's
    links that the new positions break; [0] means the old logical
    backbone is still physically realizable (the paper's criterion for
    not updating at all). *)
val needs_refresh : Backbone.t -> Geometry.Point.t array -> int

(** [refresh prev positions] rebuilds the backbone at the new
    positions with stability-first reclustering and reports how much
    actually changed.  With unchanged positions this is the identity
    (same roles, same structures) — the stability property the
    test-suite asserts. *)
val refresh : Backbone.t -> Geometry.Point.t array -> Backbone.t * stats

(** [rebuild prev positions] is the baseline: a from-scratch
    smallest-ID rebuild, with the same change accounting — what the
    stability policy is compared against. *)
val rebuild : Backbone.t -> Geometry.Point.t array -> Backbone.t * stats
