lib/core/protocol.mli: Distsim Geometry Mis Netgraph
