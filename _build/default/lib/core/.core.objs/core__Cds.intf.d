lib/core/cds.mli: Connectors Mis Netgraph
