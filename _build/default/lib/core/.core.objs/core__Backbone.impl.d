lib/core/backbone.ml: Array Cds Geometry Ldel List Mis Netgraph Wireless
