lib/core/ldel.mli: Geometry Netgraph
