lib/core/broadcast.ml: Array Cds Distsim List Netgraph Wireless
