lib/core/quality.ml: Backbone Float Format List Netgraph Option
