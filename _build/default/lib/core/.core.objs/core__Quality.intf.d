lib/core/quality.mli: Backbone Format Netgraph
