lib/core/routing.ml: Array Backbone Cds Float Geometry Hashtbl List Netgraph Option Wireless
