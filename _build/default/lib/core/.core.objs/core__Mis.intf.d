lib/core/mis.mli: Netgraph
