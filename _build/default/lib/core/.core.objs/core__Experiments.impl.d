lib/core/experiments.ml: Backbone Cds Distsim Float Format Int64 List Netgraph Protocol Quality String Wireless
