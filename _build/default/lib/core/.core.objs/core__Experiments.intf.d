lib/core/experiments.mli: Format Quality
