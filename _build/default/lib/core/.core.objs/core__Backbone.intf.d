lib/core/backbone.mli: Cds Geometry Ldel Netgraph
