lib/core/maintenance.ml: Array Backbone Cds Geometry Mis Netgraph
