lib/core/energy.mli: Geometry
