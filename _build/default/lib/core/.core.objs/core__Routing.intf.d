lib/core/routing.mli: Backbone Geometry Netgraph Wireless
