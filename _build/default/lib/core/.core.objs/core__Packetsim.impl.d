lib/core/packetsim.ml: Array Distsim Geometry List Netgraph Routing Wireless
