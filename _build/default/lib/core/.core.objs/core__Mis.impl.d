lib/core/mis.ml: Array Hashtbl List Netgraph
