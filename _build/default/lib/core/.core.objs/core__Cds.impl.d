lib/core/cds.ml: Array Connectors List Mis Netgraph
