lib/core/ldel.ml: Array Delaunay Geometry List Netgraph Set Wireless
