lib/core/async_cluster.mli: Distsim Mis Netgraph
