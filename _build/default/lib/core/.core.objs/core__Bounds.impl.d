lib/core/bounds.ml: Float
