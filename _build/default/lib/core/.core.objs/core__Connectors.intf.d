lib/core/connectors.mli: Mis Netgraph
