lib/core/packetsim.mli: Geometry Netgraph Wireless
