lib/core/energy.ml: Array Cds Geometry List Mis Netgraph Wireless
