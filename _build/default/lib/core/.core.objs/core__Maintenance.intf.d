lib/core/maintenance.mli: Backbone Geometry
