lib/core/protocol.ml: Array Distsim Float Geometry Hashtbl Int Ldel List Map Mis Netgraph Option Set Wireless
