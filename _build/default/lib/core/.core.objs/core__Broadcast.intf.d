lib/core/broadcast.mli: Cds Geometry Netgraph
