lib/core/bounds.mli:
