lib/core/connectors.ml: Array Hashtbl List Mis Netgraph Option
