lib/core/async_cluster.ml: Array Distsim List Mis
