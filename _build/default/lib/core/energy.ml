module G = Netgraph.Graph
module P = Geometry.Point

type policy = Static | Energy_aware of int

type report = {
  first_death : int option;
  deaths : (int * int) list;
  epochs_run : int;
  attempted : int;
  delivered : int;
  spent : float array;
}

let delivery_ratio r =
  if r.attempted = 0 then 1.
  else float_of_int r.delivered /. float_of_int r.attempted

let run points ~radius ~sink ~policy ~epochs ~battery ~beta =
  let n = Array.length points in
  if sink < 0 || sink >= n then invalid_arg "Energy.run: sink out of range";
  if epochs <= 0 || battery <= 0. || beta <= 0. then
    invalid_arg "Energy.run: non-positive parameter";
  let full_udg = Wireless.Udg.build points ~radius in
  let remaining = Array.make n battery in
  let alive = Array.make n true in
  let spent = Array.make n 0. in
  let deaths = ref [] in
  let first_death = ref None in
  let attempted = ref 0 and delivered = ref 0 in

  let alive_graph () = G.induced full_udg (fun u -> alive.(u)) in

  (* rebuild the backbone over the alive nodes; the priority realizes
     the rotation policy *)
  let rebuild () =
    let g = alive_graph () in
    let priority =
      match policy with
      | Static -> fun u -> if alive.(u) then 0 else 1
      | Energy_aware _ ->
        (* more remaining energy = more eligible; quantized so ties
           break by id deterministically *)
        fun u ->
          if not alive.(u) then max_int
          else int_of_float ((battery -. remaining.(u)) /. battery *. 1000.)
    in
    (Cds.of_udg ~priority g, g)
  in
  let structure = ref (rebuild ()) in

  let route src =
    let cds, g = !structure in
    if src = sink then None
    else if G.has_edge g src sink then Some [ src; sink ]
    else begin
      (* dominating-set routing over the alive backbone: enter at the
         dominator, BFS over the CDS graph (hop-greedy suffices for
         energy accounting), exit at the sink's dominator *)
      let enter =
        if cds.Cds.backbone.(src) then src
        else
          match Mis.dominators_of g cds.Cds.roles src with
          | d :: _ -> d
          | [] -> src
      in
      let exit =
        if cds.Cds.backbone.(sink) then sink
        else
          match Mis.dominators_of g cds.Cds.roles sink with
          | d :: _ -> d
          | [] -> sink
      in
      match Netgraph.Traversal.bfs_path cds.Cds.cds enter exit with
      | None -> None
      | Some p ->
        let p = if enter = src then p else src :: p in
        let p = if exit = sink then p else p @ [ sink ] in
        Some p
    end
  in

  let charge epoch path =
    let rec go = function
      | u :: (v :: _ as rest) ->
        let cost = P.dist points.(u) points.(v) ** beta in
        remaining.(u) <- remaining.(u) -. cost;
        spent.(u) <- spent.(u) +. cost;
        if remaining.(u) <= 0. && alive.(u) && u <> sink then begin
          alive.(u) <- false;
          deaths := (epoch, u) :: !deaths;
          if !first_death = None then first_death := Some epoch
        end;
        go rest
      | [ _ ] | [] -> ()
    in
    go path
  in

  let epoch = ref 0 in
  let continue = ref true in
  while !continue && !epoch < epochs do
    incr epoch;
    let died_before = List.length !deaths in
    for src = 0 to n - 1 do
      if alive.(src) && src <> sink then begin
        incr attempted;
        match route src with
        | Some p
          when List.for_all (fun u -> alive.(u) || u = sink) p ->
          incr delivered;
          charge !epoch p
        | Some _ | None -> ()
      end
    done;
    let died_now = List.length !deaths > died_before in
    let rotate =
      match policy with
      | Static -> died_now
      | Energy_aware k -> died_now || !epoch mod k = 0
    in
    if rotate then structure := rebuild ();
    (* stop when the sink is isolated among alive nodes *)
    let _, g = !structure in
    if G.degree g sink = 0 then continue := false
  done;
  {
    first_death = !first_death;
    deaths = List.rev !deaths;
    epochs_run = !epoch;
    attempted = !attempted;
    delivered = !delivered;
    spent;
  }
