(** The full spanner pipeline: deployment → UDG → clustering →
    connectors → CDS family → localized Delaunay planarization.

    [build] computes every structure the paper evaluates, over one
    node deployment.  This is the library's front door: examples, the
    CLI, the benchmarks and the experiment sweeps all consume this
    record. *)

type t = {
  points : Geometry.Point.t array;
  radius : float;
  udg : Netgraph.Graph.t;
  cds : Cds.t;  (** clustering, connectors, CDS / CDS′ / ICDS / ICDS′ *)
  ldel_icds : Ldel.t;  (** LDel over the induced backbone ICDS *)
  ldel_icds_g : Netgraph.Graph.t;  (** PLDel(ICDS): the planar backbone *)
  ldel_icds' : Netgraph.Graph.t;
      (** planar backbone plus dominatee–dominator edges — the routing
          structure spanning all nodes *)
}

(** [build points ~radius] runs the whole pipeline.  The UDG need not
    be connected, but the spanner guarantees only hold per component.
    [priority] overrides the clustering order (see {!Cds.of_udg}). *)
val build :
  ?priority:(int -> int) -> Geometry.Point.t array -> radius:float -> t

(** [ldel_full t] lazily computes LDel/PLDel over the whole UDG — the
    "LDel" baseline row of Table I (not part of the backbone
    pipeline, so it is not built eagerly). *)
val ldel_full : t -> Ldel.t

(** [structures t] enumerates the named graphs the evaluation reports
    on, in Table I order: UDG, RNG, GG, LDel(V), CDS, CDS′, ICDS,
    ICDS′, LDel(ICDS), LDel(ICDS′).  [spans_all] says whether the
    structure connects all nodes (only then are stretch factors
    defined). *)
val structures :
  t -> (string * Netgraph.Graph.t * [ `Spans_all | `Backbone_only ]) list
