(** Asynchronous clustering — the paper's claim, made executable.

    Section III-A.1: "This protocol can be easily implemented using
    synchronous communications... If the number of neighbors of each
    node is known a priori, then this protocol can also be implemented
    using asynchronous communications."

    The asynchronous rendition exploits the acyclicity of the
    smallest-ID rule: a node's final role depends only on the final
    roles of its smaller-ID neighbors, so each node simply waits until
    every smaller neighbor has announced, decides (dominator iff no
    smaller neighbor announced dominator), and announces its own
    decision — exactly one [Decided] broadcast per node, no rounds, no
    clock, tolerant of arbitrary per-link message delays.  The
    test-suite checks the result equals the synchronous {!Mis.compute}
    under randomized adversarial delays. *)

type msg = Decided of bool  (** "I am a dominator" / "I am a dominatee" *)

(** [run ~delay udg] executes the protocol on the asynchronous engine
    and returns the roles plus the engine statistics (note
    [stats.sent] is exactly one per node). *)
val run :
  delay:(from:int -> dst:int -> seq:int -> float) ->
  Netgraph.Graph.t ->
  Mis.role array * Distsim.Async_engine.stats
